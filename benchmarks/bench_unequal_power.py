"""Benchmark + reproduction of the unequal-power experiment (Eq. 11, Section 4.4).

Prints the requested-vs-measured power table for four branches with powers
0.5/1/2/4 and times snapshot generation for equal- and unequal-power requests
to confirm arbitrary powers carry no extra cost.
"""

import numpy as np
import pytest

from repro.core import CovarianceSpec, RayleighFadingGenerator
from repro.experiments import run_experiment
from repro.experiments.unequal_power import GAUSSIAN_POWERS, _correlation_matrix


@pytest.fixture(scope="module", autouse=True)
def reproduce_table(print_report):
    print_report(run_experiment("unequal-power", n_samples=200_000, n_blocks=3))


SAMPLES_PER_CALL = 10_000


def test_bench_unequal_power_snapshot(benchmark):
    """Time: 10k snapshot samples of 4 branches with powers 0.5/1/2/4."""
    correlation = _correlation_matrix(GAUSSIAN_POWERS.size)
    covariance = correlation * np.sqrt(np.outer(GAUSSIAN_POWERS, GAUSSIAN_POWERS))
    generator = RayleighFadingGenerator(
        CovarianceSpec.from_covariance_matrix(covariance), rng=0
    )
    samples = benchmark(generator.generate, SAMPLES_PER_CALL)
    assert samples.shape == (4, SAMPLES_PER_CALL)


def test_bench_equal_power_snapshot_reference(benchmark):
    """Time: the same workload with equal powers (reference point)."""
    correlation = _correlation_matrix(GAUSSIAN_POWERS.size)
    generator = RayleighFadingGenerator(
        CovarianceSpec.from_covariance_matrix(correlation), rng=0
    )
    samples = benchmark(generator.generate, SAMPLES_PER_CALL)
    assert samples.shape == (4, SAMPLES_PER_CALL)


def test_bench_envelope_power_entry_point(benchmark):
    """Time: spec construction from envelope powers (Eq. 11) + generation."""
    envelope_variances = np.array([0.1, 0.25, 0.6, 1.2])
    correlation = _correlation_matrix(4)

    def kernel():
        spec = CovarianceSpec.from_envelope_variances(envelope_variances, correlation)
        return RayleighFadingGenerator(spec, rng=1).generate(SAMPLES_PER_CALL)

    samples = benchmark(kernel)
    assert samples.shape == (4, SAMPLES_PER_CALL)
