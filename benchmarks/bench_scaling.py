"""Benchmark + reproduction of the branch-count scaling experiment.

Prints the throughput/accuracy sweep over N and times both generation modes
as the number of correlated branches grows, including an ensemble variant
that exercises the parallel substrate.
"""

import numpy as np
import pytest

from repro.core import CovarianceSpec, RayleighFadingGenerator, RealTimeRayleighGenerator
from repro.experiments import paper_values as pv
from repro.experiments import run_experiment
from repro.experiments.scaling import exponential_correlation_covariance
from repro.parallel import ChunkedGenerator, stream_envelope_statistics


@pytest.fixture(scope="module", autouse=True)
def reproduce_table(print_report):
    print_report(
        run_experiment(
            "scaling-n", branch_counts=(2, 4, 8, 16, 32, 64), snapshot_samples=30_000
        )
    )


SNAPSHOT_SAMPLES = 10_000


@pytest.mark.parametrize("n_branches", [2, 8, 32, 64])
def test_bench_snapshot_scaling(benchmark, n_branches):
    """Time: 10k snapshot samples vs. the number of branches."""
    spec = CovarianceSpec.from_covariance_matrix(
        exponential_correlation_covariance(n_branches)
    )
    generator = RayleighFadingGenerator(spec, rng=0)
    samples = benchmark(generator.generate, SNAPSHOT_SAMPLES)
    assert samples.shape == (n_branches, SNAPSHOT_SAMPLES)


@pytest.mark.parametrize("n_branches", [2, 8, 32])
def test_bench_realtime_scaling(benchmark, n_branches):
    """Time: one 1024-point Doppler-shaped block vs. the number of branches."""
    spec = CovarianceSpec.from_covariance_matrix(
        exponential_correlation_covariance(n_branches)
    )
    generator = RealTimeRayleighGenerator(
        spec, normalized_doppler=pv.NORMALIZED_DOPPLER, n_points=1024, rng=0
    )
    samples = benchmark(generator.generate, 1)
    assert samples.shape == (n_branches, 1024)


def test_bench_chunked_streaming_statistics(benchmark):
    """Time: streaming covariance/power accumulation over 10 x 10k-sample chunks."""
    covariance = exponential_correlation_covariance(8)

    def kernel():
        generator = ChunkedGenerator(covariance, chunk_size=10_000, rng=3)
        return stream_envelope_statistics(generator, n_chunks=10)

    stats = benchmark(kernel)
    assert stats.n_samples == 100_000
    assert np.max(np.abs(stats.covariance - covariance)) < 0.1
