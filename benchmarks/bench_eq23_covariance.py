"""Benchmark + reproduction of Eq. (23): the spatial-correlation covariance matrix.

Regenerates the covariance table of Eq. (23) from the Salz-Winters Bessel
series and times the series evaluation, whose cost grows with the number of
antennas and with the series truncation length.
"""

import numpy as np
import pytest

from repro.channels import MIMOArrayScenario
from repro.experiments import paper_values as pv
from repro.experiments import run_experiment


@pytest.fixture(scope="module", autouse=True)
def reproduce_table(print_report):
    print_report(run_experiment("eq23-spatial-covariance"))


def test_bench_eq23_covariance_assembly(benchmark):
    """Time: spatial covariance model evaluation + matrix assembly (N = 3)."""
    scenario = pv.paper_mimo_scenario()
    powers = np.ones(pv.N_BRANCHES)

    result = benchmark(lambda: scenario.covariance_spec(powers).matrix)
    assert np.allclose(result, pv.EQ23_COVARIANCE, atol=2e-4)


def test_bench_eq23_sixteen_antenna_array(benchmark):
    """Time: the Bessel-series assembly for a 16-element array."""
    scenario = MIMOArrayScenario(
        n_antennas=16,
        spacing_wavelengths=pv.ANTENNA_SPACING_WAVELENGTHS,
        mean_angle_rad=pv.MEAN_ANGLE_RAD,
        angular_spread_rad=pv.ANGULAR_SPREAD_RAD,
    )
    powers = np.ones(16)

    matrix = benchmark(lambda: scenario.covariance_spec(powers).matrix)
    assert matrix.shape == (16, 16)
