"""Benchmark + reproduction of Fig. 4(b): spatially correlated real-time envelopes."""

import numpy as np
import pytest

from repro.experiments import run_experiment
from repro.experiments.fig4b import build_generator
from repro.experiments import paper_values as pv


@pytest.fixture(scope="module", autouse=True)
def reproduce_figure(print_report):
    print_report(run_experiment("fig4b-spatial-envelopes"))


def test_bench_fig4b_block_generation(benchmark):
    """Time: one M = 4096 block of 3 spatially correlated Doppler-shaped branches."""
    generator = build_generator(seed=1)

    block = benchmark(generator.generate, 1)
    assert block.shape == (pv.N_BRANCHES, pv.IDFT_POINTS)


def test_bench_fig4b_envelope_statistics(benchmark):
    """Time: generation + envelope extraction + per-branch power estimate."""
    generator = build_generator(seed=2)

    def kernel():
        envelopes = np.abs(generator.generate(1))
        return np.mean(envelopes**2, axis=1)

    powers = benchmark(kernel)
    assert powers.shape == (pv.N_BRANCHES,)
