"""Benchmark + reproduction of the variance-compensation comparison (Section 5 vs. [6]).

Prints the achieved-covariance table for the compensated (proposed) and
uncompensated ([6]) real-time combinations, and times both variants to show
the correction is free: it is a single scalar normalization.
"""

import pytest

from repro.core import RealTimeRayleighGenerator
from repro.experiments import paper_values as pv
from repro.experiments import run_experiment


@pytest.fixture(scope="module", autouse=True)
def reproduce_table(print_report):
    print_report(run_experiment("variance-compensation"))


@pytest.fixture(scope="module")
def spec():
    return pv.paper_ofdm_scenario().covariance_spec([1.0, 1.0, 1.0])


def test_bench_compensated_realtime_block(benchmark, spec):
    """Time: proposed real-time generation (with Eq. 19 compensation)."""
    generator = RealTimeRayleighGenerator(
        spec, normalized_doppler=pv.NORMALIZED_DOPPLER, n_points=pv.IDFT_POINTS, rng=0
    )
    block = benchmark(generator.generate, 1)
    assert block.shape == (3, pv.IDFT_POINTS)


def test_bench_uncompensated_realtime_block(benchmark, spec):
    """Time: the uncompensated combination of [6] (same cost, wrong statistics)."""
    generator = RealTimeRayleighGenerator(
        spec,
        normalized_doppler=pv.NORMALIZED_DOPPLER,
        n_points=pv.IDFT_POINTS,
        compensate_variance=False,
        rng=0,
    )
    block = benchmark(generator.generate, 1)
    assert block.shape == (3, pv.IDFT_POINTS)
