"""Benchmark + ablation of the Doppler substrate: IDFT vs. sum-of-sinusoids.

Prints the accuracy comparison (autocorrelation and Rayleigh-ness) and times
both single-branch substrates so the speed/accuracy trade-off is on record:
the IDFT block costs one FFT, the sum-of-sinusoids block costs ``O(Ns * M)``.
"""

import pytest

from repro.channels import IDFTRayleighGenerator, SumOfSinusoidsGenerator
from repro.experiments import paper_values as pv
from repro.experiments import run_experiment


@pytest.fixture(scope="module", autouse=True)
def reproduce_table(print_report):
    print_report(run_experiment("doppler-substrate", n_blocks=8))


def test_bench_idft_substrate_block(benchmark):
    """Time: one 4096-sample block from the IDFT substrate (paper's choice)."""
    generator = IDFTRayleighGenerator(
        n_points=pv.IDFT_POINTS,
        normalized_doppler=pv.NORMALIZED_DOPPLER,
        input_variance_per_dim=pv.INPUT_VARIANCE_PER_DIM,
        rng=0,
    )
    block = benchmark(generator.generate_block)
    assert block.shape == (pv.IDFT_POINTS,)


@pytest.mark.parametrize("n_sinusoids", [16, 64, 256])
def test_bench_sum_of_sinusoids_block(benchmark, n_sinusoids):
    """Time: one 4096-sample block from the sum-of-sinusoids substrate."""
    generator = SumOfSinusoidsGenerator(
        n_points=pv.IDFT_POINTS,
        normalized_doppler=pv.NORMALIZED_DOPPLER,
        n_sinusoids=n_sinusoids,
        rng=1,
    )
    block = benchmark(generator.generate_block)
    assert block.shape == (pv.IDFT_POINTS,)
