"""Benchmark + reproduction of the PSD-forcing precision comparison (Section 4.2).

Prints the Frobenius-distance table (clipping vs. epsilon replacement) and
times both forcing strategies.
"""

import pytest

from repro.core import force_positive_semidefinite
from repro.experiments import run_experiment
from repro.experiments.non_psd import make_indefinite_covariance


@pytest.fixture(scope="module", autouse=True)
def reproduce_table(print_report):
    print_report(run_experiment("psd-forcing-precision", n_matrices=6))


@pytest.fixture(scope="module")
def request_matrix():
    return make_indefinite_covariance(12, seed=7)


def test_bench_clip_forcing(benchmark, request_matrix):
    """Time: the proposed eigenvalue-clipping repair (N = 12)."""
    result = benchmark(force_positive_semidefinite, request_matrix, "clip")
    assert result.was_modified


def test_bench_epsilon_forcing(benchmark, request_matrix):
    """Time: the epsilon-replacement repair of [6] (N = 12)."""
    result = benchmark(
        lambda: force_positive_semidefinite(request_matrix, method="epsilon", epsilon=1e-4)
    )
    assert result.was_modified


def test_bench_higham_forcing(benchmark, request_matrix):
    """Time: the diagonal-preserving Higham repair (extension)."""
    result = benchmark(
        lambda: force_positive_semidefinite(request_matrix, method="higham")
    )
    assert result.was_modified
