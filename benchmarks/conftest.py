"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one paper artifact (table, figure, or
claimed comparison).  The pattern is:

* a module-scoped fixture runs the corresponding experiment once and prints
  its report (the "rows/series the paper reports"), so running
  ``pytest benchmarks/ --benchmark-only -s`` reproduces the evaluation; and
* the ``test_bench_*`` functions time the computational kernel behind that
  experiment with pytest-benchmark.
"""

from __future__ import annotations

import pytest


def report(result) -> None:
    """Print an experiment report in a benchmark-friendly framed block."""
    banner = "=" * 78
    print(f"\n{banner}\n{result.render()}\n{banner}")


@pytest.fixture(scope="session")
def print_report():
    """Fixture returning the report printer (kept as a fixture for uniform use)."""
    return report
