"""Benchmark: sharded sweep wall clock over a warm shared artifact cache.

The sharded runner (:mod:`repro.shard`) exists to spread one sweep across
worker subprocesses sharing a ``cache_dir``.  This module times the
steady-state configuration — every compile artifact already published, so
each worker's compile is a whole-plan warm hit and the run measures what
sharding actually adds: subprocess spawn/import, slice payload I/O, the
engine execute, and result publish/merge.  Phases run the *same* warm sweep
at 1, 2 and 4 shards, so the JSON artifact tracks the orchestration
overhead per shard count and ``compare_benchmarks.py`` flags regressions
(a slowdown here means the runner, worker, or store lock path got heavier
— the engine itself is covered by the other benches).

Subprocess spawning dominates at this plan size (interpreter + numpy
import per worker is milliseconds-to-seconds while a warm execute is
milliseconds), so rounds are bounded with ``benchmark.pedantic`` instead
of letting calibration fork hundreds of workers.

A correctness guard pins the invariant the numbers depend on (standing
invariant 7): the merged sharded result is byte-identical to the solo run
at every shard count.
"""

import os
from pathlib import Path

import pytest

from repro.engine import (
    CompiledPlanCache,
    DecompositionCache,
    DopplerFilterCache,
    SimulationEngine,
)
from repro.experiments.scaling import shard_sweep_plan
from repro.shard import run_sharded

N_ENTRIES = 8
N_BRANCHES = 32
N_SAMPLES = 2048
SHARD_COUNTS = [1, 2, 4]


@pytest.fixture(scope="module")
def cache_root(tmp_path_factory):
    """The shared cache directory: ``REPRO_BENCH_CACHE_DIR`` or a tmp dir."""
    configured = os.environ.get("REPRO_BENCH_CACHE_DIR", "").strip()
    if configured:
        root = Path(configured)
        root.mkdir(parents=True, exist_ok=True)
        return root
    return tmp_path_factory.mktemp("bench-shard")


def _plan():
    return shard_sweep_plan(N_ENTRIES, N_BRANCHES, seed=20050413)


@pytest.fixture(scope="module")
def warm_cache_dir(cache_root):
    """One populated cache directory shared by every phase of this module."""
    cache_dir = cache_root / "shard-sweep"
    # Publishing through a solo engine warms all tiers (idempotent: CI's
    # second process finds the first one's artifacts and re-verifies them).
    SimulationEngine(cache_dir=cache_dir).run(_plan(), N_SAMPLES)
    return cache_dir


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_bench_sharded_warm_sweep(benchmark, warm_cache_dir, tmp_path, n_shards):
    """Time: the full sharded run (spawn, execute, publish, merge), warm."""
    plan = _plan()
    rounds = {"count": 0}

    def kernel():
        rounds["count"] += 1
        work_dir = tmp_path / f"work-{n_shards}-{rounds['count']}"
        outcome = run_sharded(
            plan,
            N_SAMPLES,
            n_shards=n_shards,
            cache_dir=warm_cache_dir,
            work_dir=work_dir,
        )
        assert outcome.ok
        return outcome

    outcome = benchmark.pedantic(kernel, rounds=3, iterations=1, warmup_rounds=1)
    # Steady state: every shard loaded its whole compiled plan warm.
    assert outcome.tier_totals()["plan_cache_hits"] == len(outcome.slices)
    assert outcome.tier_totals()["cache_misses"] == 0


def test_bench_sharded_equals_solo(warm_cache_dir, tmp_path):
    """Correctness guard (standing invariant 7): merged == solo, per count."""
    plan = _plan()
    solo = SimulationEngine(
        cache=DecompositionCache(),
        filter_cache=DopplerFilterCache(),
        plan_cache=CompiledPlanCache(),
    ).run(plan, N_SAMPLES)
    for n_shards in SHARD_COUNTS:
        outcome = run_sharded(
            plan,
            N_SAMPLES,
            n_shards=n_shards,
            cache_dir=warm_cache_dir,
            work_dir=tmp_path / f"guard-{n_shards}",
        )
        assert outcome.ok
        for merged_block, solo_block in zip(outcome.merged.blocks, solo.blocks):
            assert merged_block.samples.tobytes() == solo_block.samples.tobytes()


def test_report_shard_scaling(warm_cache_dir, tmp_path, capsys):
    """Print the measured wall clock per shard count (informational)."""
    import time

    plan = _plan()
    timings = {}
    for n_shards in SHARD_COUNTS:
        best = float("inf")
        for attempt in range(2):
            start = time.perf_counter()
            outcome = run_sharded(
                plan,
                N_SAMPLES,
                n_shards=n_shards,
                cache_dir=warm_cache_dir,
                work_dir=tmp_path / f"report-{n_shards}-{attempt}",
            )
            assert outcome.ok
            best = min(best, time.perf_counter() - start)
        timings[n_shards] = best
    with capsys.disabled():
        baseline = timings[SHARD_COUNTS[0]]
        parts = ", ".join(
            f"{n_shards} shard(s) {seconds:.3f}s ({baseline / seconds:.2f}x)"
            for n_shards, seconds in timings.items()
        )
        print(
            f"\n[bench_shard_scaling] B={N_ENTRIES}, N={N_BRANCHES}, "
            f"n_samples={N_SAMPLES}, warm cache: {parts}"
        )
