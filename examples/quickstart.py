"""Quickstart: generate correlated Rayleigh fading envelopes in a few lines.

Run with::

    python examples/quickstart.py

The script builds a covariance specification for three correlated branches,
generates envelopes with the paper's generalized algorithm (eigen coloring +
forced PSD), and verifies the achieved statistics against the request.
"""

from __future__ import annotations

import numpy as np

from repro import (
    CovarianceSpec,
    RayleighFadingGenerator,
    covariance_match_report,
    envelope_power_report,
)


def main() -> None:
    # 1. Describe the desired correlation structure: a complex Hermitian
    #    covariance matrix of the underlying complex Gaussian branches.  The
    #    diagonal carries the per-branch powers (here: unequal on purpose).
    desired_covariance = np.array(
        [
            [1.0, 0.45 + 0.30j, 0.10 + 0.05j],
            [0.45 - 0.30j, 2.0, 0.60 + 0.20j],
            [0.10 - 0.05j, 0.60 - 0.20j, 0.5],
        ]
    )
    spec = CovarianceSpec.from_covariance_matrix(desired_covariance)

    # 2. Build the generator (steps 3-5 of the paper's algorithm happen here:
    #    forced positive semi-definiteness + eigendecomposition coloring).
    generator = RayleighFadingGenerator(spec, rng=2024)

    # 3. Generate envelopes (steps 6-7, vectorized over time samples).
    block = generator.generate_envelopes(n_samples=200_000)
    print(f"generated {block.n_branches} branches x {block.n_samples} samples")

    # 4. Verify: the sample covariance of the complex Gaussians matches the
    #    request and the envelope powers follow the Rayleigh relations.
    gaussian = generator.generate_gaussian(n_samples=200_000)
    covariance_report = covariance_match_report(gaussian.samples, desired_covariance)
    print(covariance_report.summary())

    power_report = envelope_power_report(block.envelopes, spec.gaussian_variances)
    print(power_report.summary())

    print("\nper-branch results (requested power -> measured power, measured mean):")
    for branch in range(block.n_branches):
        requested = spec.gaussian_variances[branch]
        measured_power = float(np.mean(block.envelopes[branch] ** 2))
        measured_mean = float(np.mean(block.envelopes[branch]))
        print(
            f"  branch {branch + 1}: {requested:.3f} -> {measured_power:.3f}"
            f"   (mean envelope {measured_mean:.3f})"
        )


if __name__ == "__main__":
    main()
