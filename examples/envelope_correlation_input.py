"""Specifying correlation in the envelope domain.

Measurement campaigns and older papers often report the correlation between
*envelopes* (what a power detector sees), not between the underlying complex
Gaussians the generator needs.  This example starts from an envelope
correlation matrix and envelope powers, converts them with the exact
hypergeometric map of :mod:`repro.core.envelope_correlation`, generates the
fading, and confirms the measured envelope correlations land on the request —
and shows how far off the common ``|rho_g|^2`` shortcut would have been.

Run with::

    python examples/envelope_correlation_input.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CovarianceSpec,
    RayleighFadingGenerator,
    envelope_correlation_from_gaussian,
    gaussian_correlation_matrix_from_envelope,
)
from repro.experiments.reporting import Table
from repro.validation import empirical_envelope_correlation


def main() -> None:
    # What the measurement campaign reported: envelope correlations + powers.
    requested_envelope_correlation = np.array(
        [
            [1.00, 0.70, 0.30],
            [0.70, 1.00, 0.55],
            [0.30, 0.55, 1.00],
        ]
    )
    envelope_variances = np.array([0.4, 1.0, 1.6])

    # Convert to the Gaussian domain with the exact map, build the spec.
    gaussian_correlation = gaussian_correlation_matrix_from_envelope(
        requested_envelope_correlation
    )
    spec = CovarianceSpec.from_envelope_variances(
        envelope_variances, gaussian_correlation.astype(complex)
    )

    generator = RayleighFadingGenerator(spec, rng=314)
    envelopes = generator.generate_envelopes(500_000).envelopes
    measured = empirical_envelope_correlation(envelopes)

    table = Table(
        title="Envelope correlation: requested vs. measured (exact map) vs. |rho|^2 shortcut",
        columns=["pair", "requested", "measured", "shortcut would give"],
    )
    for k in range(3):
        for j in range(k + 1, 3):
            requested = requested_envelope_correlation[k, j]
            shortcut_rho = np.sqrt(requested)  # |rho_g| from the rho_r ~ |rho_g|^2 shortcut
            shortcut_result = float(envelope_correlation_from_gaussian(shortcut_rho))
            table.add_row(
                f"({k + 1},{j + 1})",
                float(requested),
                float(measured[k, j]),
                shortcut_result,
            )
    print(table.render())

    print("\nmeasured envelope variances vs. requested:")
    for j in range(3):
        print(
            f"  branch {j + 1}: requested {envelope_variances[j]:.3f}, "
            f"measured {float(np.var(envelopes[j])):.3f}"
        )
    print(
        "\nThe exact hypergeometric conversion recovers the requested envelope "
        "correlations; the |rho|^2 shortcut would have undershot each pair by "
        "roughly 0.02-0.03."
    )


if __name__ == "__main__":
    main()
