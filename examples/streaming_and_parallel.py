"""Streaming (bounded-memory) and parallel ensemble generation.

Long channel records and Monte-Carlo confidence studies are where the HPC
aspects of the library matter.  This example shows

1. :class:`repro.parallel.ChunkedGenerator` streaming a long Doppler-shaped
   record chunk by chunk while accumulating running statistics, and
2. :func:`repro.parallel.run_covariance_ensemble` running independent
   replicas (optionally across a process pool) to put a confidence interval
   on the achieved covariance error.

Run with::

    python examples/streaming_and_parallel.py
"""

from __future__ import annotations

import numpy as np

from repro.experiments import paper_values as pv
from repro.parallel import ChunkedGenerator, run_covariance_ensemble, stream_envelope_statistics


def streaming_demo() -> None:
    print("=" * 72)
    print("1. Streaming a long Doppler-shaped record with bounded memory")
    print("=" * 72)

    spec = pv.paper_ofdm_scenario().covariance_spec(np.ones(3))
    generator = ChunkedGenerator(
        spec, normalized_doppler=pv.NORMALIZED_DOPPLER, n_points=4096, rng=5
    )
    n_chunks = 16  # 16 x 4096 = 65536 samples per branch, never held at once
    stats = stream_envelope_statistics(generator, n_chunks=n_chunks)

    print(f"accumulated {stats.n_samples} samples per branch over {n_chunks} chunks")
    print(f"running branch powers      : {np.round(stats.envelope_power, 3)}")
    print(f"running envelope means     : {np.round(stats.envelope_mean, 3)}")
    print(
        "max covariance deviation   : "
        f"{np.max(np.abs(stats.covariance - spec.matrix)):.3f}"
    )


def ensemble_demo() -> None:
    print()
    print("=" * 72)
    print("2. Monte-Carlo ensemble of independent replicas")
    print("=" * 72)

    result = run_covariance_ensemble(
        pv.EQ22_COVARIANCE,
        n_replicas=8,
        samples_per_replica=50_000,
        seed=123,
        n_workers=1,  # set to the number of cores to fan out across processes
    )
    print(f"replicas                   : {result.n_replicas}")
    print(f"samples per replica        : {result.total_samples // result.n_replicas}")
    print(f"mean relative covariance error : {result.mean_relative_error:.4f}")
    print(f"worst replica error            : {result.worst_relative_error:.4f}")
    print(
        "pooled covariance deviation    : "
        f"{np.max(np.abs(result.mean_covariance - pv.EQ22_COVARIANCE)):.4f}"
    )


if __name__ == "__main__":
    streaming_demo()
    ensemble_demo()
