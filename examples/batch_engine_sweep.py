"""Batched engine walkthrough: plan -> compile -> execute over a sweep.

Builds a MIMO spacing/spread parameter grid with ScenarioSweep, runs the
whole grid through the batched engine in one pass, shows the decomposition
cache paying off on a second run, and verifies the engine's bit-identity
guarantee against a looped single-spec generator.
"""

import numpy as np

from repro import (
    DecompositionCache,
    MIMOArrayScenario,
    RayleighFadingGenerator,
    ScenarioSweep,
    SimulationEngine,
)


def main() -> None:
    sweep = ScenarioSweep.product(
        MIMOArrayScenario,
        n_antennas=[4],
        spacing_wavelengths=[0.5, 1.0, 2.0],
        angular_spread_rad=[np.pi / 36, np.pi / 18, np.pi / 9],
    )
    plan = sweep.to_plan([1.0, 1.0, 1.0, 1.0], seed=2005)
    print(f"sweep of {len(sweep)} scenarios -> plan with {plan.n_entries} entries")

    engine = SimulationEngine(cache=DecompositionCache())
    result = engine.run(plan, n_samples=20_000)
    report = result.compile_report
    print(
        f"compiled {report.n_entries} entries in {report.n_groups} group(s): "
        f"{report.cache_misses} decompositions computed, {report.cache_hits} cached"
    )

    # Per-scenario envelope statistics straight from the batch.
    for block, label in zip(result.blocks, sweep.labels):
        envelopes = np.abs(block.samples)
        print(f"  {label:58s} mean envelope {np.mean(envelopes):.4f}")

    # Second run: every decomposition is served from the cache.
    rerun = engine.run(plan, n_samples=20_000)
    print(
        f"second run: {rerun.compile_report.cache_hits} cache hits, "
        f"{rerun.compile_report.cache_misses} misses"
    )

    # Bit-identity: entry 0 regenerated with a standalone generator.
    entry = plan[0]
    reference = RayleighFadingGenerator(entry.spec, rng=entry.seed).generate_gaussian(20_000)
    identical = np.array_equal(reference.samples, result.blocks[0].samples)
    print(f"batched samples bit-identical to looped generator: {identical}")


if __name__ == "__main__":
    main()
