"""MIMO antenna-array spatially correlated fading — the paper's Fig. 4(b) scenario.

A three-element uniform linear transmit array with one-wavelength spacing,
angular spread of 10 degrees and broadside departure (Phi = 0) produces the
real covariance matrix of Eq. (23).  This example builds the scenario,
generates Doppler-shaped envelopes, and examines how the spatial correlation
shows up in the envelope domain (adjacent antennas fade together; diversity
gain of selecting the best antenna is correspondingly reduced).

Run with::

    python examples/mimo_spatial_correlation.py
"""

from __future__ import annotations

import numpy as np

from repro import DopplerSettings, MIMOArrayScenario, RealTimeRayleighGenerator
from repro.experiments.reporting import format_complex_matrix
from repro.signal import amplitude_to_db
from repro.validation import empirical_envelope_correlation

PAPER_EQ23 = np.array(
    [
        [1.0, 0.8123, 0.3730],
        [0.8123, 1.0, 0.8123],
        [0.3730, 0.8123, 1.0],
    ]
)


def selection_diversity_gain_db(envelopes: np.ndarray, outage: float = 0.01) -> float:
    """Gain (dB) of selecting the strongest branch, at the given outage level.

    Compares the ``outage``-quantile of the best-branch envelope against the
    same quantile of a single branch; correlated branches give less gain than
    independent ones, which is exactly why correlated fading generators are
    needed for realistic diversity studies.
    """
    single = np.quantile(envelopes[0], outage)
    best = np.quantile(np.max(envelopes, axis=0), outage)
    return float(amplitude_to_db(best / single))


def main() -> None:
    scenario = MIMOArrayScenario(
        n_antennas=3,
        spacing_wavelengths=1.0,            # D / lambda = 1
        mean_angle_rad=0.0,                 # Phi = 0 (broadside)
        angular_spread_rad=np.pi / 18.0,    # Delta = 10 degrees
        doppler=DopplerSettings(sampling_frequency_hz=1000.0, max_doppler_hz=50.0),
    )
    spec = scenario.covariance_spec(np.ones(3))

    print("covariance matrix derived from the array geometry (paper Eq. 23):")
    print(format_complex_matrix(spec.matrix))
    print(
        "\nmaximum deviation from the published matrix: "
        f"{np.max(np.abs(spec.matrix - PAPER_EQ23)):.2e}"
    )

    generator = RealTimeRayleighGenerator(
        spec, normalized_doppler=0.05, n_points=4096, rng=7
    )
    envelopes = np.abs(generator.generate(n_blocks=8))

    print("\nempirical envelope correlation matrix (Pearson):")
    print(format_complex_matrix(empirical_envelope_correlation(envelopes), precision=3))

    correlated_gain = selection_diversity_gain_db(envelopes)

    # Reference: the same array with independent branches (diagonal covariance).
    independent = RealTimeRayleighGenerator(
        np.eye(3, dtype=complex), normalized_doppler=0.05, n_points=4096, rng=8
    )
    independent_gain = selection_diversity_gain_db(np.abs(independent.generate(n_blocks=8)))

    print(
        "\nselection-diversity gain at 1% outage:"
        f"\n  correlated array (Eq. 23): {correlated_gain:5.2f} dB"
        f"\n  independent branches     : {independent_gain:5.2f} dB"
        "\nThe spatial correlation of the closely spaced array erodes part of the"
        "\ndiversity gain - the effect the correlated-envelope generator lets you"
        "\nquantify before building hardware."
    )


if __name__ == "__main__":
    main()
