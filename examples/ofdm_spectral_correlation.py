"""OFDM-style spectrally correlated fading — the paper's Fig. 4(a) scenario.

Three carriers 200 kHz apart (GSM-900 style) observed with arrival delays of
1/3/4 ms over a channel with 1 us rms delay spread and a 50 Hz Doppler spread
are spectrally correlated; the Jakes model (Section 2 of the paper) predicts
the covariance matrix of Eq. (22).  This example

1. builds the scenario from physical parameters,
2. prints the resulting covariance matrix next to the paper's Eq. (22),
3. generates Doppler-shaped envelopes with the real-time algorithm of
   Section 5, and
4. prints the achieved covariance, per-branch power, and an ASCII rendering
   of the first 200 samples in dB around the rms value (the y-axis of
   Fig. 4a).

Run with::

    python examples/ofdm_spectral_correlation.py
"""

from __future__ import annotations

import numpy as np

from repro import DopplerSettings, OFDMScenario, RealTimeRayleighGenerator
from repro.experiments.reporting import ascii_series, format_complex_matrix
from repro.signal import envelope_db_around_rms
from repro.validation import validate_block

PAPER_EQ22 = np.array(
    [
        [1.0, 0.3782 + 0.4753j, 0.0878 + 0.2207j],
        [0.3782 - 0.4753j, 1.0, 0.3063 + 0.3849j],
        [0.0878 - 0.2207j, 0.3063 - 0.3849j, 1.0],
    ]
)


def main() -> None:
    # Physical parameters straight from Section 6 of the paper.
    doppler = DopplerSettings(
        sampling_frequency_hz=1_000.0,   # Fs = 1 kHz
        max_doppler_hz=50.0,             # Fm = 50 Hz (900 MHz carrier, 60 km/h)
        n_points=4096,                   # M = 4096 IDFT points
        input_variance_per_dim=0.5,      # sigma_orig^2 = 1/2
    )
    scenario = OFDMScenario(
        carrier_frequencies_hz=900e6 + 200e3 * np.array([2.0, 1.0, 0.0]),
        delays_s=np.array(
            [
                [0.0, 1e-3, 4e-3],
                [1e-3, 0.0, 3e-3],
                [4e-3, 3e-3, 0.0],
            ]
        ),
        rms_delay_spread_s=1e-6,
        doppler=doppler,
    )

    spec = scenario.covariance_spec(np.ones(3))
    print("covariance matrix derived from the physical scenario (paper Eq. 22):")
    print(format_complex_matrix(spec.matrix))
    print("\nmaximum deviation from the published matrix: "
          f"{np.max(np.abs(spec.matrix - PAPER_EQ22)):.2e}")

    generator = RealTimeRayleighGenerator(
        spec,
        normalized_doppler=doppler.normalized_doppler,
        n_points=doppler.n_points,
        input_variance_per_dim=doppler.input_variance_per_dim,
        rng=42,
    )
    block = generator.generate_gaussian(n_blocks=4)

    print("\nstatistical validation of the generated fading:")
    report = validate_block(
        block, spec.matrix, normalized_doppler=doppler.normalized_doppler
    )
    print(report.render())

    db_traces = envelope_db_around_rms(np.abs(block.samples[:, :200]))
    for branch in range(3):
        print()
        print(ascii_series(db_traces[branch], label=f"envelope {branch + 1} [dB around rms]"))


if __name__ == "__main__":
    main()
