"""Diversity-receiver Monte-Carlo study driven by the correlated-fading generator.

The paper's motivation for accurate correlated Rayleigh generation is the
"accurate performance analysis of diversity systems" ([6]'s title).  This
example uses the library the way a systems engineer would: it sweeps the
antenna spacing of a two-branch selection-combining receiver and estimates
the outage probability and the average output SNR against the theoretical
independent-branch references, showing how spatial correlation erodes the
diversity gain.

Run with::

    python examples/diversity_receiver_simulation.py
"""

from __future__ import annotations

import numpy as np

from repro import MIMOArrayScenario, RayleighFadingGenerator
from repro.experiments.reporting import Table
from repro.signal import power_to_db


def outage_probability(snr_per_branch: np.ndarray, threshold: float) -> float:
    """Probability that the selection-combined SNR falls below ``threshold``."""
    combined = np.max(snr_per_branch, axis=0)
    return float(np.mean(combined < threshold))


def run_sweep(
    spacings_wavelengths=(0.1, 0.25, 0.5, 1.0, 3.0),
    mean_snr_db: float = 10.0,
    outage_threshold_db: float = 0.0,
    n_samples: int = 400_000,
    seed: int = 99,
) -> Table:
    """Sweep antenna spacing and report outage and mean combined SNR."""
    mean_snr = 10 ** (mean_snr_db / 10.0)
    threshold = 10 ** (outage_threshold_db / 10.0)

    table = Table(
        title=(
            "Two-branch selection combining, 10 dB mean branch SNR, 10-degree "
            "angular spread: effect of antenna spacing"
        ),
        columns=[
            "D/lambda",
            "branch correlation |rho|",
            "outage P(SNR < 0 dB)",
            "mean combined SNR [dB]",
        ],
    )

    # Independent-branch reference (infinite spacing).
    rng = np.random.default_rng(seed)
    independent = rng.exponential(mean_snr, size=(2, n_samples))
    table.add_row(
        "independent",
        0.0,
        outage_probability(independent, threshold),
        float(power_to_db(np.mean(np.max(independent, axis=0)))),
    )

    for spacing in spacings_wavelengths:
        scenario = MIMOArrayScenario(
            n_antennas=2,
            spacing_wavelengths=spacing,
            mean_angle_rad=0.0,
            angular_spread_rad=np.pi / 18.0,
        )
        spec = scenario.covariance_spec(np.full(2, mean_snr))
        generator = RayleighFadingGenerator(spec, rng=seed + int(spacing * 100))
        # Instantaneous SNR of a Rayleigh branch is |z|^2 (unit-energy symbol).
        snr = np.abs(generator.generate(n_samples)) ** 2
        rho = abs(spec.correlation_coefficients()[0, 1])
        table.add_row(
            spacing,
            rho,
            outage_probability(snr, threshold),
            float(power_to_db(np.mean(np.max(snr, axis=0)))),
        )
    return table


def main() -> None:
    table = run_sweep()
    print(table.render())
    print(
        "\nReading the table: tight spacing (D/lambda = 0.1) leaves the branches "
        "almost fully correlated, so selection combining barely improves the "
        "outage; by one wavelength the correlation has dropped enough to recover "
        "most of the independent-branch diversity gain."
    )


if __name__ == "__main__":
    main()
