"""Unequal powers and non-PSD covariance requests — the cases the baselines cannot handle.

Two short demonstrations of the generality claims of the paper:

1. **Unequal envelope powers** (Section 4.4 step 1): the desired powers are
   specified in *envelope* units (sigma_r^2), converted through Eq. (11), and
   the measured envelope variances land on the request.  The equal-power-only
   baselines ([1], [2], [3], [4], [6]) reject this request outright.

2. **A covariance request that is not positive semi-definite** (Section 4.2):
   pairwise-estimated correlations are often jointly inconsistent.  Cholesky
   based methods fail; the proposed algorithm clips the negative eigenvalue
   and realizes the Frobenius-nearest PSD covariance.

Run with::

    python examples/unequal_power_and_nonpsd.py
"""

from __future__ import annotations

import numpy as np

from repro import CovarianceSpec, RayleighFadingGenerator
from repro.baselines import BeaulieuMeraniGenerator
from repro.exceptions import CholeskyError, PowerError
from repro.experiments.reporting import format_complex_matrix
from repro.linalg import frobenius_distance


def unequal_power_demo() -> None:
    print("=" * 72)
    print("1. Unequal envelope powers via Eq. (11)")
    print("=" * 72)

    envelope_variances = np.array([0.2, 0.5, 1.0, 2.0])
    correlation = np.eye(4, dtype=complex)
    for k in range(4):
        for j in range(4):
            if k != j:
                correlation[k, j] = (0.5 + 0.2j) ** abs(k - j) if k < j else np.conj(
                    (0.5 + 0.2j) ** abs(k - j)
                )

    spec = CovarianceSpec.from_envelope_variances(envelope_variances, correlation)
    generator = RayleighFadingGenerator(spec, rng=11)
    envelopes = generator.generate_envelopes(300_000).envelopes

    print("requested envelope variance -> measured envelope variance")
    for j in range(4):
        measured = float(np.var(envelopes[j]))
        print(f"  branch {j + 1}: {envelope_variances[j]:.3f} -> {measured:.3f}")

    # The equal-power baselines refuse this request.
    try:
        BeaulieuMeraniGenerator(spec.matrix, rng=0)
    except PowerError as error:
        print(f"\nBeaulieu-Merani baseline [3,4] rejects the request: {error}")


def non_psd_demo() -> None:
    print()
    print("=" * 72)
    print("2. A covariance request that is not positive semi-definite")
    print("=" * 72)

    # Jointly inconsistent pairwise correlations: each pair is valid, the
    # matrix is not.
    request = np.array(
        [
            [1.0, 0.9, 0.1],
            [0.9, 1.0, 0.9],
            [0.1, 0.9, 1.0],
        ],
        dtype=complex,
    )
    eigenvalues = np.linalg.eigvalsh(request)
    print(f"requested covariance eigenvalues: {np.round(eigenvalues, 4)}")

    try:
        BeaulieuMeraniGenerator(request, rng=0)
    except CholeskyError as error:
        print(f"Cholesky-based baseline fails: {error}")

    generator = RayleighFadingGenerator(request, rng=12)
    realized_target = generator.effective_covariance
    print("\nproposed algorithm: forced-PSD covariance actually realized "
          f"(Frobenius gap {frobenius_distance(realized_target, request):.4f}):")
    print(format_complex_matrix(realized_target))

    samples = generator.generate(300_000)
    achieved = samples @ samples.conj().T / samples.shape[1]
    print(
        "\nsample covariance of the generated branches "
        f"(max deviation from the forced-PSD target {np.max(np.abs(achieved - realized_target)):.4f}):"
    )
    print(format_complex_matrix(achieved))


if __name__ == "__main__":
    unequal_power_demo()
    non_psd_demo()
