"""Concurrency properties of the serving core (the PR's acceptance test).

32 async clients hammer one :class:`EnvelopeService` with a mix of identical
and distinct plans; the suite then checks the three serving invariants
end-to-end:

* **bit-identity** — every response equals a direct ``Simulator.run`` of the
  same plan on a fresh session, coalesced or not;
* **single compile per unique plan hash** — proven two ways: a counting
  backend observes exactly one ``eigh`` batch per unique covariance, and the
  ``CompileReport`` counters on the fanned-out results show exactly one
  fresh compile per unique plan hash;
* **conservation** — queue slots and pool slots are conserved through
  completion, rejection, and cancellation:
  ``requests_submitted == completed + failed + cancelled`` once drained,
  with no queued flight or pending pool submission left behind.

Determinism note: each client coroutine performs all of its submissions in
one synchronous block before its first ``await``.  The event loop is FIFO,
so every client's submissions land before any worker task gets to run —
coalescing and queue-depth counters are exact, not statistical.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.api import Simulator
from repro.engine import SimulationPlan
from repro.engine.cache import DecompositionCache
from repro.exceptions import BackpressureError
from repro.service import EnvelopeService

from conftest import FlakyBackend

BASE = np.array(
    [
        [1.0, 0.5 + 0.2j, 0.1],
        [0.5 - 0.2j, 2.0, 0.3j],
        [0.1, -0.3j, 1.5],
    ],
    dtype=complex,
)

#: Unique request combos: 4 covariance scales x 4 seeds = 16 unique keys.
SCALES = (1.0, 2.0, 0.5, 3.0)
SEEDS = (11, 22, 33, 44)
N_SAMPLES = 64
N_CLIENTS = 32
REQUESTS_PER_CLIENT = 3


def _combo_plan(combo_index):
    scale = SCALES[combo_index % len(SCALES)]
    seed = SEEDS[combo_index // len(SCALES)]
    plan = SimulationPlan()
    plan.add(scale * BASE, seed=seed)
    return plan


def _all_combos():
    return list(range(len(SCALES) * len(SEEDS)))


def _references():
    """Direct ``Simulator.run`` results, one fresh session per combo."""
    references = {}
    for combo in _all_combos():
        sim = Simulator(cache=DecompositionCache())
        try:
            references[combo] = sim.run(_combo_plan(combo), N_SAMPLES)
        finally:
            sim.close()
    return references


class TestThirtyTwoClients:
    def test_coalesced_fanout_is_bit_identical_and_compiles_once(self, tmp_path):
        """The acceptance criterion: 32 clients, 16 unique plans, 1 compile each."""
        backend = FlakyBackend(fail_at=0)  # fail_at=0 never fires: pure counter
        unique = len(_all_combos())
        total = N_CLIENTS * REQUESTS_PER_CLIENT

        async def scenario():
            # cache_dir attaches the compiled-plan tier (memory + disk), so
            # request-level coalescing sits above compile-level singleflight
            # exactly as in production `serve` runs.
            sim = Simulator(
                backend=backend, cache_dir=str(tmp_path), max_workers=4
            )
            async with EnvelopeService(
                sim, max_queue=unique, dispatch_slots=4
            ) as service:
                outcomes = []

                async def client(client_index):
                    # All submits before the first await: see module docstring.
                    submitted = []
                    for j in range(REQUESTS_PER_CLIENT):
                        combo = (client_index * REQUESTS_PER_CLIENT + j) % unique
                        request_id = service.submit(
                            _combo_plan(combo),
                            N_SAMPLES,
                            client_id=f"client-{client_index:02d}",
                        )
                        submitted.append((combo, request_id))
                    for combo, request_id in submitted:
                        result = await service.result(request_id)
                        outcomes.append((combo, request_id, result))

                await asyncio.gather(
                    *(client(i) for i in range(N_CLIENTS))
                )
                metrics = service.metrics()
            sim.close()
            return outcomes, metrics

        outcomes, metrics = asyncio.run(scenario())
        references = _references()

        assert len(outcomes) == total
        # Bit-identity: every response equals the direct single-client run.
        for combo, _request_id, result in outcomes:
            reference = references[combo]
            assert len(result.blocks) == len(reference.blocks)
            for got, want in zip(result.blocks, reference.blocks):
                assert np.array_equal(got.samples, want.samples)

        # Coalescing: 96 requests collapse onto exactly 16 flights.
        assert metrics["flights_started"] == unique
        assert metrics["flights_completed"] == unique
        assert metrics["requests_submitted"] == total
        assert metrics["requests_coalesced"] == total - unique
        assert metrics["requests_completed"] == total

        # One compile per unique covariance: the counting backend saw
        # exactly the serial baseline's eigh traffic per distinct matrix
        # (seeds share the compiled plan), with zero duplicated compiles.
        probe = FlakyBackend(fail_at=0)
        probe_sim = Simulator(backend=probe, cache=DecompositionCache())
        try:
            probe_sim.run(_combo_plan(0), N_SAMPLES)
        finally:
            probe_sim.close()
        eigh_calls_per_compile = probe.eigh_calls
        assert eigh_calls_per_compile > 0
        assert backend.eigh_calls == eigh_calls_per_compile * len(SCALES)

        # ...and the CompileReport counters agree: per unique plan hash
        # (= per covariance scale) exactly one flight compiled fresh; every
        # other flight hit the plan cache (memory tier or in-flight join).
        by_result = {}
        for combo, _request_id, result in outcomes:
            by_result.setdefault(id(result), (combo, result))
        assert len(by_result) == unique  # one shared result object per flight
        fresh = [
            result
            for _combo, result in by_result.values()
            if result.compile_report.plan_cache_hits == 0
        ]
        cached = [
            result
            for _combo, result in by_result.values()
            if result.compile_report.plan_cache_hits == 1
        ]
        assert len(fresh) == len(SCALES)
        assert len(fresh) + len(cached) == unique

        # Conservation, fully drained.
        assert (
            metrics["requests_completed"]
            + metrics["requests_failed"]
            + metrics["requests_cancelled"]
            == metrics["requests_submitted"]
        )
        assert metrics["queued_flights"] == 0
        assert metrics["pending_submissions"] == 0

    def test_full_queue_rejects_instead_of_blocking(self):
        """Overflow submissions fail synchronously; accepted ones complete."""

        async def scenario():
            sim = Simulator(cache=DecompositionCache(), max_workers=2)
            async with EnvelopeService(
                sim, max_queue=4, dispatch_slots=2
            ) as service:
                accepted, rejected = [], 0
                # One synchronous block: the queue cannot drain mid-loop, so
                # exactly max_queue submissions are accepted.
                for combo in range(8):
                    try:
                        accepted.append(
                            service.submit(_combo_plan(combo), N_SAMPLES)
                        )
                    except BackpressureError as exc:
                        rejected += 1
                        assert exc.retry_after > 0
                assert len(accepted) == 4
                assert rejected == 4
                results = [await service.result(r) for r in accepted]
                assert all(r.n_entries == 1 for r in results)
                metrics = service.metrics()
            sim.close()
            return metrics

        metrics = asyncio.run(scenario())
        assert metrics["requests_rejected"] == 4
        assert metrics["requests_completed"] == 4
        assert (
            metrics["requests_completed"]
            + metrics["requests_failed"]
            + metrics["requests_cancelled"]
            == metrics["requests_submitted"]
        )
        assert metrics["queued_flights"] == 0

    def test_cancellation_conserves_queue_slots(self):
        """Cancelling queued work releases its slot; counters stay conserved."""

        async def scenario():
            sim = Simulator(cache=DecompositionCache(), max_workers=1)
            async with EnvelopeService(
                sim, max_queue=4, dispatch_slots=1
            ) as service:
                ids = [
                    service.submit(_combo_plan(combo), N_SAMPLES)
                    for combo in range(4)
                ]
                # Cancel half the queue synchronously (before dispatch).
                for request_id in ids[2:]:
                    assert service.cancel(request_id) is True
                # The released slots are immediately reusable.
                replacement = service.submit(_combo_plan(7), N_SAMPLES)
                for request_id in ids[:2] + [replacement]:
                    result = await service.result(request_id)
                    assert result.n_entries == 1
                metrics = service.metrics()
            sim.close()
            return metrics

        metrics = asyncio.run(scenario())
        assert metrics["requests_cancelled"] == 2
        assert metrics["requests_completed"] == 3
        assert (
            metrics["requests_completed"]
            + metrics["requests_failed"]
            + metrics["requests_cancelled"]
            == metrics["requests_submitted"]
        )
        assert metrics["queued_flights"] == 0
        assert metrics["pending_submissions"] == 0


class TestCoalescedEqualsUncoalesced:
    def test_coalesce_flag_off_still_bit_identical(self):
        """The documented invariant, falsifiably: same bits either way."""

        async def scenario():
            sim = Simulator(cache=DecompositionCache(), max_workers=2)
            async with EnvelopeService(sim, dispatch_slots=2) as service:
                plan = _combo_plan(5)
                coalesced_ids = [
                    service.submit(plan, N_SAMPLES, client_id=f"c{i}")
                    for i in range(3)
                ]
                solo_id = service.submit(
                    _combo_plan(5), N_SAMPLES, coalesce=False
                )
                coalesced = [await service.result(r) for r in coalesced_ids]
                solo = await service.result(solo_id)
                metrics = service.metrics()
            sim.close()
            return coalesced, solo, metrics

        coalesced, solo, metrics = asyncio.run(scenario())
        assert metrics["requests_coalesced"] == 2
        assert metrics["flights_started"] == 2  # coalesced trio + solo
        assert all(r is coalesced[0] for r in coalesced)
        assert solo is not coalesced[0]
        for got, want in zip(solo.blocks, coalesced[0].blocks):
            assert np.array_equal(got.samples, want.samples)


@pytest.mark.slow
class TestSustainedLoad:
    def test_waves_of_clients_never_leak_state(self):
        """Several submit/drain waves leave no residue in the scheduler."""

        async def scenario():
            sim = Simulator(cache=DecompositionCache(), max_workers=4)
            async with EnvelopeService(
                sim, max_queue=16, dispatch_slots=4
            ) as service:
                for wave in range(5):
                    ids = [
                        service.submit(
                            _combo_plan(combo),
                            N_SAMPLES,
                            client_id=f"wave-{wave}-client-{combo % 4}",
                        )
                        for combo in range(8)
                    ]
                    for request_id in ids:
                        await service.result(request_id)
                    assert service.queue_depth == 0
                metrics = service.metrics()
            sim.close()
            return metrics

        metrics = asyncio.run(scenario())
        assert metrics["requests_submitted"] == 40
        assert metrics["requests_completed"] == 40
        assert metrics["pending_submissions"] == 0
