"""Property tests: batched Doppler execution is bit-identical to looping.

The Doppler substrate's core guarantee — for the same per-entry seeds, a
Doppler plan through plan → compile → execute produces exactly the samples a
loop of single-spec :class:`RealTimeRayleighGenerator` instances would — is
asserted here over randomized plans: mixed seeds, branch counts ``N``
(including ``N = 1``), IDFT lengths ``M``, normalized Dopplers ``f_m``, and
the Eq. (19) compensation toggled on and off.  Sample counts that are not
multiples of ``M`` exercise the truncation path, streaming exercises the
group buffers, and mixed snapshot/Doppler plans exercise group separation.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Simulator
from repro.core import CovarianceSpec, RayleighFadingGenerator
from repro.core.realtime import RealTimeRayleighGenerator
from repro.engine import (
    DecompositionCache,
    DopplerSpec,
    SimulationEngine,
    SimulationPlan,
)

#: IDFT lengths kept small so hypothesis examples stay fast; 96 is a
#: non-power-of-two to keep the FFT path honest.
BLOCK_LENGTHS = (64, 96, 128)


def _random_spec(rng, size):
    """One random PSD covariance spec with unequal powers."""
    basis = rng.normal(size=(size, size + 1)) + 1j * rng.normal(size=(size, size + 1))
    covariance = basis @ basis.conj().T / (size + 1)
    powers = rng.uniform(0.2, 4.0, size)
    scale = np.sqrt(powers / np.real(np.diag(covariance)))
    return CovarianceSpec.from_covariance_matrix(covariance * np.outer(scale, scale))


@st.composite
def doppler_plan_data(draw, max_entries=5):
    """Random specs, seeds, and per-entry Doppler modes for one plan."""
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    n_entries = draw(st.integers(min_value=1, max_value=max_entries))
    rng = np.random.default_rng(seed)
    specs, dopplers, seeds = [], [], []
    for _ in range(n_entries):
        size = int(rng.integers(1, 5))
        specs.append(_random_spec(rng, size))
        n_points = int(rng.choice(BLOCK_LENGTHS))
        # Keep at least one bin in the passband: f_m * M >= 1.
        f_m = float(rng.uniform(1.5 / n_points, 0.4))
        dopplers.append(
            DopplerSpec(
                normalized_doppler=f_m,
                n_points=n_points,
                compensate_variance=bool(rng.integers(0, 2)),
            )
        )
        seeds.append(int(rng.integers(0, 2**62)))
    return specs, dopplers, seeds


def _looped_reference(spec, doppler, seed, n_samples):
    """What a standalone real-time generator produces for ``n_samples``."""
    n_blocks = -(-n_samples // doppler.n_points)
    generator = RealTimeRayleighGenerator(
        spec,
        normalized_doppler=doppler.normalized_doppler,
        n_points=doppler.n_points,
        input_variance_per_dim=doppler.input_variance_per_dim,
        compensate_variance=doppler.compensate_variance,
        rng=seed,
        cache=DecompositionCache(maxsize=0),
    )
    return generator.generate_gaussian(n_blocks)


class TestBatchedDopplerEqualsLooped:
    @given(
        plan_data=doppler_plan_data(),
        n_samples=st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=30, deadline=None)
    def test_bit_identical_samples(self, plan_data, n_samples):
        specs, dopplers, seeds = plan_data
        plan = SimulationPlan()
        for spec, doppler, seed in zip(specs, dopplers, seeds):
            plan.add(spec, seed=seed, doppler=doppler)
        engine = SimulationEngine(cache=DecompositionCache())
        result = engine.run(plan, n_samples)
        for spec, doppler, seed, block in zip(specs, dopplers, seeds, result.blocks):
            reference = _looped_reference(spec, doppler, seed, n_samples)
            assert np.array_equal(
                reference.samples[:, :n_samples], block.samples
            )
            assert np.array_equal(reference.variances, block.variances)
            assert block.metadata["method"] == "realtime"
            assert block.metadata["normalized_doppler"] == doppler.normalized_doppler
            assert block.metadata["compensate_variance"] == doppler.compensate_variance

    @given(plan_data=doppler_plan_data(max_entries=3))
    @settings(max_examples=15, deadline=None)
    def test_streaming_concatenation_matches_batch_record(self, plan_data):
        """Streamed blocks cut the same continuous record execute_plan produces,
        for block sizes that do not divide the IDFT length."""
        specs, dopplers, seeds = plan_data
        plan = SimulationPlan()
        for spec, doppler, seed in zip(specs, dopplers, seeds):
            plan.add(spec, seed=seed, doppler=doppler)
        engine = SimulationEngine(cache=DecompositionCache())
        streamed = list(engine.stream(plan, block_size=37, n_blocks=4))
        full = engine.run(plan, 37 * 4)
        for index in range(plan.n_entries):
            concatenated = np.concatenate(
                [batch.blocks[index].samples for batch in streamed], axis=1
            )
            assert np.array_equal(concatenated, full.blocks[index].samples)

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n_samples=st.integers(min_value=1, max_value=150),
    )
    @settings(max_examples=20, deadline=None)
    def test_mixed_snapshot_and_doppler_plan(self, seed, n_samples):
        """Doppler and snapshot entries coexist; each matches its own loop."""
        rng = np.random.default_rng(seed)
        size = int(rng.integers(1, 4))
        spec = _random_spec(rng, size)
        doppler = DopplerSpec(normalized_doppler=0.05, n_points=64)
        snapshot_seed = int(rng.integers(0, 2**62))
        doppler_seed = int(rng.integers(0, 2**62))
        plan = SimulationPlan()
        plan.add(spec, seed=snapshot_seed)
        plan.add(spec, seed=doppler_seed, doppler=doppler)
        result = SimulationEngine(cache=DecompositionCache()).run(plan, n_samples)
        snapshot_reference = RayleighFadingGenerator(
            spec, rng=snapshot_seed, cache=DecompositionCache(maxsize=0)
        ).generate_gaussian(n_samples)
        assert np.array_equal(
            snapshot_reference.samples, result.blocks[0].samples
        )
        doppler_reference = _looped_reference(spec, doppler, doppler_seed, n_samples)
        assert np.array_equal(
            doppler_reference.samples[:, :n_samples], result.blocks[1].samples
        )

    @given(plan_data=doppler_plan_data(max_entries=3))
    @settings(max_examples=10, deadline=None)
    def test_cache_hits_do_not_change_samples(self, plan_data):
        specs, dopplers, seeds = plan_data
        plan = SimulationPlan()
        for spec, doppler, seed in zip(specs, dopplers, seeds):
            plan.add(spec, seed=seed, doppler=doppler)
        engine = SimulationEngine(cache=DecompositionCache())
        cold = engine.run(plan, 64)
        warm = engine.run(plan, 64)
        assert warm.compile_report.cache_misses == 0
        for cold_block, warm_block in zip(cold.blocks, warm.blocks):
            assert np.array_equal(cold_block.samples, warm_block.samples)


class TestFusedExecuteBitIdentity:
    """The fused, allocation-light execute kernels are byte-for-byte the
    unfused two-pass pipeline.

    ``np.array_equal`` treats ``-0.0`` and ``0.0`` as equal, so the tests
    above would not notice a sign-of-zero drift from the in-place fusion;
    these compare raw bytes.  The unfused reference is the pre-fusion
    formula spelled out inline: per-stream ``rng.normal`` draws, the
    ``coeffs * (A - 1j * B)`` weighting, a plain out-of-place IDFT, and an
    out-of-place coloring matmul.
    """

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n_blocks=st.integers(min_value=1, max_value=4),
        m=st.sampled_from(BLOCK_LENGTHS),
    )
    @settings(max_examples=20, deadline=None)
    def test_fused_doppler_kernel_bytes_equal_unfused(self, seed, n_blocks, m):
        from repro.channels.doppler import young_beaulieu_filter
        from repro.channels.idft_generator import batched_doppler_blocks

        coeffs = young_beaulieu_filter(m, 0.1)
        stream_seeds = np.random.default_rng(seed).integers(0, 2**62, size=3)
        fused = batched_doppler_blocks(
            coeffs,
            [np.random.default_rng(s) for s in stream_seeds],
            n_blocks=n_blocks,
            workspace={},
        )
        scale = np.sqrt(0.5)
        draws = np.stack(
            [
                np.random.default_rng(s).normal(0.0, scale, size=(n_blocks, 2, m))
                for s in stream_seeds
            ]
        )
        weighted = coeffs * (draws[:, :, 0, :] - 1j * draws[:, :, 1, :])
        reference = np.fft.ifft(weighted.reshape(-1, m), axis=-1).reshape(
            len(stream_seeds), n_blocks * m
        )
        assert fused.tobytes() == reference.tobytes()

    @given(
        plan_data=doppler_plan_data(max_entries=3),
        block_size=st.sampled_from([7, 37, 61, 101]),
    )
    @settings(max_examples=15, deadline=None)
    def test_stream_bytes_identical_across_block_boundaries(
        self, plan_data, block_size
    ):
        """Cross-block streaming through the ring buffer and reused scratch
        is byte-identical to one long execute, for block sizes that do not
        divide the IDFT length."""
        specs, dopplers, seeds = plan_data
        plan = SimulationPlan()
        for spec, doppler, seed in zip(specs, dopplers, seeds):
            plan.add(spec, seed=seed, doppler=doppler)
        engine = SimulationEngine(cache=DecompositionCache())
        streamed = list(engine.stream(plan, block_size=block_size, n_blocks=4))
        full = engine.run(plan, block_size * 4)
        for index in range(plan.n_entries):
            concatenated = np.concatenate(
                [batch.blocks[index].samples for batch in streamed], axis=1
            )
            assert concatenated.tobytes() == full.blocks[index].samples.tobytes()

    def test_execute_bytes_equal_unfused_reference(self):
        """A mixed snapshot/Doppler plan executes to exactly the bytes of
        the unfused looped reference generators."""
        rng = np.random.default_rng(20260807)
        spec = _random_spec(rng, 3)
        doppler = DopplerSpec(normalized_doppler=0.08, n_points=96)
        plan = SimulationPlan()
        plan.add(spec, seed=101)
        plan.add(spec, seed=202, doppler=doppler)
        n_samples = 250  # not a multiple of M = 96
        result = SimulationEngine(cache=DecompositionCache()).run(plan, n_samples)
        snapshot = RayleighFadingGenerator(
            spec, rng=101, cache=DecompositionCache(maxsize=0)
        ).generate_gaussian(n_samples)
        assert result.blocks[0].samples.tobytes() == snapshot.samples.tobytes()
        looped = _looped_reference(spec, doppler, 202, n_samples)
        assert (
            result.blocks[1].samples.tobytes()
            == np.ascontiguousarray(looped.samples[:, :n_samples]).tobytes()
        )


class TestSessionDopplerEqualsLooped:
    """``Simulator.envelopes`` Doppler mode inherits the engine guarantee."""

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n_samples=st.integers(min_value=1, max_value=120),
        compensate=st.booleans(),
    )
    @settings(max_examples=20, deadline=None)
    def test_envelopes_doppler_bit_identical_to_realtime_generator(
        self, seed, n_samples, compensate
    ):
        rng = np.random.default_rng(seed)
        size = int(rng.integers(1, 4))
        spec = _random_spec(rng, size)
        entry_seed = int(rng.integers(0, 2**62))
        simulator = Simulator(backend="numpy", cache=DecompositionCache())
        block = simulator.envelopes(
            spec,
            n_samples,
            seed=entry_seed,
            normalized_doppler=0.1,
            n_points=64,
            compensate_variance=compensate,
            return_gaussian=True,
        )
        doppler = DopplerSpec(
            normalized_doppler=0.1, n_points=64, compensate_variance=compensate
        )
        reference = _looped_reference(spec, doppler, entry_seed, n_samples)
        assert np.array_equal(reference.samples[:, :n_samples], block.samples)
