"""Property-based tests for covariance assembly (Eq. 12-13) and CovarianceSpec."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CovarianceSpec, build_covariance_matrix
from repro.core.covariance import covariance_entry, decompose_covariance_entry


@st.composite
def component_sets(draw, max_size=6):
    """Random consistent covariance components (Rxx symmetric, Rxy antisymmetric)."""
    size = draw(st.integers(min_value=2, max_value=max_size))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    powers = rng.uniform(0.2, 5.0, size)
    raw_xx = rng.uniform(-0.4, 0.4, (size, size))
    rxx = 0.5 * (raw_xx + raw_xx.T)
    raw_xy = rng.uniform(-0.4, 0.4, (size, size))
    rxy = 0.5 * (raw_xy - raw_xy.T)
    np.fill_diagonal(rxx, 0.0)
    np.fill_diagonal(rxy, 0.0)
    return powers, rxx, rxx.copy(), rxy, -rxy


@st.composite
def complex_entries(draw):
    real = draw(st.floats(min_value=-10, max_value=10, allow_nan=False))
    imag = draw(st.floats(min_value=-10, max_value=10, allow_nan=False))
    return complex(real, imag)


class TestEntryRoundTrip:
    @given(entry=complex_entries())
    @settings(max_examples=200)
    def test_decompose_then_rebuild(self, entry):
        rebuilt = covariance_entry(*decompose_covariance_entry(entry))
        assert np.isclose(rebuilt.real, entry.real, atol=1e-12)
        assert np.isclose(rebuilt.imag, entry.imag, atol=1e-12)

    @given(
        rxx=st.floats(min_value=-5, max_value=5, allow_nan=False),
        rxy=st.floats(min_value=-5, max_value=5, allow_nan=False),
    )
    def test_circular_symmetric_components_round_trip(self, rxx, rxy):
        entry = covariance_entry(rxx, rxx, rxy, -rxy)
        back = decompose_covariance_entry(entry)
        assert np.isclose(back[0], rxx, atol=1e-12)
        assert np.isclose(back[2], rxy, atol=1e-12)


class TestBuildCovarianceMatrixProperties:
    @given(components=component_sets())
    @settings(max_examples=100, deadline=None)
    def test_assembled_matrix_is_hermitian_with_requested_diagonal(self, components):
        powers, rxx, ryy, rxy, ryx = components
        matrix = build_covariance_matrix(powers, rxx, ryy, rxy, ryx)
        assert np.allclose(matrix, matrix.conj().T)
        assert np.allclose(np.real(np.diag(matrix)), powers)
        assert np.allclose(np.imag(np.diag(matrix)), 0.0)

    @given(components=component_sets())
    @settings(max_examples=100, deadline=None)
    def test_entries_follow_eq13(self, components):
        powers, rxx, ryy, rxy, ryx = components
        matrix = build_covariance_matrix(powers, rxx, ryy, rxy, ryx)
        size = powers.shape[0]
        for k in range(size):
            for j in range(size):
                if k == j:
                    continue
                expected = (rxx[k, j] + ryy[k, j]) - 1j * (rxy[k, j] - ryx[k, j])
                assert np.isclose(matrix[k, j], expected, atol=1e-12)

    @given(components=component_sets())
    @settings(max_examples=75, deadline=None)
    def test_spec_construction_and_normalization(self, components):
        powers, rxx, ryy, rxy, ryx = components
        spec = CovarianceSpec.from_components(powers, rxx, ryy, rxy, ryx)
        rho = spec.correlation_coefficients()
        assert np.allclose(np.real(np.diag(rho)), 1.0, atol=1e-10)
        # Correlation coefficients are bounded by Cauchy-Schwarz... only when
        # the matrix is a valid covariance; here we only require the
        # normalization to be consistent with the matrix itself.
        rebuilt = rho * np.sqrt(np.outer(powers, powers))
        assert np.allclose(rebuilt, spec.matrix, atol=1e-10)
