"""Property: a disk-cache hit is bit-identical to a fresh computation.

The persistent cache invariant carried over from PRs 1–4: results never
depend on the cache state.  The strongest form crosses process boundaries —
two *separate* Python processes sharing one ``cache_dir`` must produce
byte-for-byte equal :class:`repro.engine.BatchResult` blocks, with the
second process compiling entirely from the first one's disk entries.  Run
as real subprocesses (not forks) so nothing in-memory can leak between the
"processes".

Both disk tiers are covered separately:

* **per-matrix tiers** (``decompositions/`` + ``filters/``), with the
  compiled-plan tier explicitly detached, so the second process exercises
  one decomposition load per unique matrix;
* the **compiled-plan tier** (``plans/``), where the second process loads
  the *whole* compiled plan from one artifact — zero decomposition or
  filter lookups — and still reproduces the first process byte-for-byte.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

_SRC = str(Path(__file__).resolve().parents[2] / "src")

# The worker compiles and executes a fixed mixed plan (snapshot + Doppler,
# a repeated matrix, a repaired non-PSD matrix) against a shared cache_dir,
# then dumps the sample blocks and the cache/compile counters.  In "decomps"
# mode the compiled-plan tier is detached so the per-matrix tiers are
# exercised; in "plans" mode the engine attaches all three tiers (the
# default `SimulationEngine(cache_dir=...)` configuration).
_WORKER = """
import json, sys
import numpy as np
from repro.engine import (CompiledPlanCache, DecompositionCache, DopplerFilterCache,
                          DopplerSpec, SimulationEngine, SimulationPlan)

mode, cache_dir, out_path = sys.argv[1], sys.argv[2], sys.argv[3]

base = np.array([[1.0, 0.4 + 0.1j], [0.4 - 0.1j, 2.0]], dtype=complex)
non_psd = np.array(
    [[1.0, 0.9, 0.9], [0.9, 1.0, 0.9], [0.9, 0.9, 0.2]], dtype=complex
)
plan = SimulationPlan()
plan.add(base, seed=11)
plan.add(2.0 * base, seed=12)
plan.add(base, seed=13)                 # repeated matrix, new seed
plan.add(non_psd, seed=14)              # exercises the PSD repair path
plan.add(base, seed=15, doppler=DopplerSpec(normalized_doppler=0.05, n_points=64))
plan.add(2.0 * base, seed=16, doppler=DopplerSpec(normalized_doppler=0.05, n_points=64))

if mode == "decomps":
    engine = SimulationEngine(
        cache=DecompositionCache(cache_dir=cache_dir),
        filter_cache=DopplerFilterCache(cache_dir=cache_dir),
        plan_cache=CompiledPlanCache(),   # detached: isolate per-matrix tiers
    )
else:
    engine = SimulationEngine(cache_dir=cache_dir)
result = engine.run(plan, 64)

stats = engine.cache.stats
np.savez(
    out_path + ".npz",
    **{f"block_{i}": block.samples for i, block in enumerate(result.blocks)},
)
json.dump(
    {
        "cache_hits": result.compile_report.cache_hits,
        "cache_misses": result.compile_report.cache_misses,
        "disk_hits": stats.disk_hits,
        "filter_cache_hits": result.compile_report.doppler_filter_cache_hits,
        "plan_cache_hits": result.compile_report.plan_cache_hits,
        "plan_disk_hits": engine.plan_cache.stats.hits,
        "decomposition_lookups": stats.lookups,
        "was_repaired": bool(
            engine.compile(plan).decomposition_for(3).was_repaired
        ),
        "summary": result.summary(),
    },
    open(out_path + ".json", "w"),
)
"""


def _run_worker(mode: str, cache_dir: Path, out_path: Path) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_CACHE_DIR", None)  # only the explicit cache_dir may act
    subprocess.run(
        [sys.executable, "-c", _WORKER, mode, str(cache_dir), str(out_path)],
        check=True,
        env=env,
        timeout=300,
    )
    return json.loads((out_path.parent / (out_path.name + ".json")).read_text())


def _assert_blocks_byte_identical(cold_path: Path, warm_path: Path) -> None:
    with np.load(str(cold_path) + ".npz") as cold, np.load(
        str(warm_path) + ".npz"
    ) as warm:
        assert set(cold.files) == set(warm.files) == {f"block_{i}" for i in range(6)}
        for name in cold.files:
            # Byte-for-byte, not approximately equal.
            assert cold[name].tobytes() == warm[name].tobytes()


@pytest.mark.slow
class TestCrossProcessBitIdentity:
    def test_two_processes_sharing_one_cache_dir(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold_meta = _run_worker("decomps", cache_dir, tmp_path / "cold")
        warm_meta = _run_worker("decomps", cache_dir, tmp_path / "warm")

        # The first process computed everything (its only hits are in-batch:
        # the Doppler entries reuse the snapshot entries' matrices); the
        # second compiled the same plan without a single computation — every
        # unique matrix came off the first one's disk entries.
        assert cold_meta["cache_misses"] == 3
        assert cold_meta["disk_hits"] == 0
        assert warm_meta["cache_misses"] == 0
        assert warm_meta["cache_hits"] == cold_meta["cache_hits"] + cold_meta["cache_misses"]
        assert warm_meta["disk_hits"] == cold_meta["cache_misses"]
        assert warm_meta["filter_cache_hits"] == 1
        # The detached plan cache never acted.
        assert cold_meta["plan_cache_hits"] == warm_meta["plan_cache_hits"] == 0
        # The repair diagnostics survive the disk round-trip too.
        assert cold_meta["was_repaired"] and warm_meta["was_repaired"]

        _assert_blocks_byte_identical(tmp_path / "cold", tmp_path / "warm")

    def test_compiled_plan_tier_across_two_processes(self, tmp_path):
        # The executor-level tier: the second process loads the *whole*
        # compiled plan from one artifact — zero eigh/cholesky, zero
        # decomposition lookups, zero filter builds — and its execute_plan
        # output is byte-identical to the first process's fresh compile.
        cache_dir = tmp_path / "cache"
        cold_meta = _run_worker("plans", cache_dir, tmp_path / "cold")
        warm_meta = _run_worker("plans", cache_dir, tmp_path / "warm")

        assert cold_meta["plan_cache_hits"] == 0
        assert cold_meta["cache_misses"] == 3
        assert warm_meta["plan_cache_hits"] == 1
        assert warm_meta["plan_disk_hits"] >= 1
        # The whole point: the warm compile never touched the per-matrix
        # decomposition tier (the second engine.compile() in the worker is
        # itself another plan-cache hit).
        assert warm_meta["decomposition_lookups"] == 0
        assert warm_meta["cache_hits"] == warm_meta["cache_misses"] == 0
        assert "compiled-plan cache: 1 hit(s)" in warm_meta["summary"]
        # Diagnostics (PSD repair flags) survive the plan-artifact
        # round-trip exactly like the per-matrix one.
        assert cold_meta["was_repaired"] and warm_meta["was_repaired"]

        _assert_blocks_byte_identical(tmp_path / "cold", tmp_path / "warm")

    def test_in_process_disk_hit_is_bit_identical(self, tmp_path):
        # The cheaper, same-process form of the invariant for both tiers: a
        # compile served from disk produces the same bytes as one that
        # computed fresh.
        from repro.engine import (
            CompiledPlanCache,
            DecompositionCache,
            SimulationEngine,
            SimulationPlan,
        )

        base = np.array([[1.0, 0.3], [0.3, 1.0]], dtype=complex)
        plan = SimulationPlan.from_specs([base, 3.0 * base], seed=5)

        fresh = SimulationEngine(cache_dir=tmp_path / "a").run(plan, 128)

        # Decomposition tier (plan cache detached).
        def decomp_engine():
            return SimulationEngine(
                cache=DecompositionCache(cache_dir=tmp_path / "b"),
                plan_cache=CompiledPlanCache(),
            )

        decomp_engine().run(plan, 128)  # populate b
        from_disk_engine = decomp_engine()
        from_disk = from_disk_engine.run(plan, 128)
        assert from_disk_engine.cache.stats.disk_hits == 2
        for block_fresh, block_disk in zip(fresh.blocks, from_disk.blocks):
            assert block_fresh.samples.tobytes() == block_disk.samples.tobytes()

        # Compiled-plan tier (the "a" directory already holds the artifact).
        warm_engine = SimulationEngine(cache_dir=tmp_path / "a")
        warm = warm_engine.run(plan, 128)
        assert warm.compile_report.plan_cache_hits == 1
        assert warm_engine.cache.stats.lookups == 0
        for block_fresh, block_warm in zip(fresh.blocks, warm.blocks):
            assert block_fresh.samples.tobytes() == block_warm.samples.tobytes()
