"""Property: a disk-cache hit is bit-identical to a fresh computation.

The persistent cache invariant carried over from PRs 1–3: results never
depend on the cache state.  The strongest form crosses process boundaries —
two *separate* Python processes sharing one ``cache_dir`` must produce
byte-for-byte equal :class:`repro.engine.BatchResult` blocks, with the
second process compiling entirely from the first one's disk entries.  Run
as real subprocesses (not forks) so nothing in-memory can leak between the
"processes".
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

_SRC = str(Path(__file__).resolve().parents[2] / "src")

# The worker compiles and executes a fixed mixed plan (snapshot + Doppler,
# a repeated matrix, a repaired non-PSD matrix) against a shared cache_dir,
# then dumps the sample blocks and the cache/compile counters.
_WORKER = """
import json, sys
import numpy as np
from repro.engine import (DecompositionCache, DopplerFilterCache, DopplerSpec,
                          SimulationEngine, SimulationPlan)

cache_dir, out_path = sys.argv[1], sys.argv[2]

base = np.array([[1.0, 0.4 + 0.1j], [0.4 - 0.1j, 2.0]], dtype=complex)
non_psd = np.array(
    [[1.0, 0.9, 0.9], [0.9, 1.0, 0.9], [0.9, 0.9, 0.2]], dtype=complex
)
plan = SimulationPlan()
plan.add(base, seed=11)
plan.add(2.0 * base, seed=12)
plan.add(base, seed=13)                 # repeated matrix, new seed
plan.add(non_psd, seed=14)              # exercises the PSD repair path
plan.add(base, seed=15, doppler=DopplerSpec(normalized_doppler=0.05, n_points=64))
plan.add(2.0 * base, seed=16, doppler=DopplerSpec(normalized_doppler=0.05, n_points=64))

engine = SimulationEngine(cache_dir=cache_dir)
result = engine.run(plan, 64)

stats = engine.cache.stats
np.savez(
    out_path + ".npz",
    **{f"block_{i}": block.samples for i, block in enumerate(result.blocks)},
)
json.dump(
    {
        "cache_hits": result.compile_report.cache_hits,
        "cache_misses": result.compile_report.cache_misses,
        "disk_hits": stats.disk_hits,
        "filter_cache_hits": result.compile_report.doppler_filter_cache_hits,
        "was_repaired": bool(
            engine.compile(plan).decomposition_for(3).was_repaired
        ),
    },
    open(out_path + ".json", "w"),
)
"""


def _run_worker(cache_dir: Path, out_path: Path) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    subprocess.run(
        [sys.executable, "-c", _WORKER, str(cache_dir), str(out_path)],
        check=True,
        env=env,
        timeout=300,
    )
    return json.loads((out_path.parent / (out_path.name + ".json")).read_text())


@pytest.mark.slow
class TestCrossProcessBitIdentity:
    def test_two_processes_sharing_one_cache_dir(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold_meta = _run_worker(cache_dir, tmp_path / "cold")
        warm_meta = _run_worker(cache_dir, tmp_path / "warm")

        # The first process computed everything (its only hits are in-batch:
        # the Doppler entries reuse the snapshot entries' matrices); the
        # second compiled the same plan without a single computation — every
        # unique matrix came off the first one's disk entries.
        assert cold_meta["cache_misses"] == 3
        assert cold_meta["disk_hits"] == 0
        assert warm_meta["cache_misses"] == 0
        assert warm_meta["cache_hits"] == cold_meta["cache_hits"] + cold_meta["cache_misses"]
        assert warm_meta["disk_hits"] == cold_meta["cache_misses"]
        assert warm_meta["filter_cache_hits"] == 1
        # The repair diagnostics survive the disk round-trip too.
        assert cold_meta["was_repaired"] and warm_meta["was_repaired"]

        with np.load(str(tmp_path / "cold") + ".npz") as cold, np.load(
            str(tmp_path / "warm") + ".npz"
        ) as warm:
            assert set(cold.files) == set(warm.files) == {f"block_{i}" for i in range(6)}
            for name in cold.files:
                # Byte-for-byte, not approximately equal.
                assert cold[name].tobytes() == warm[name].tobytes()

    def test_in_process_disk_hit_is_bit_identical(self, tmp_path):
        # The cheaper, same-process form of the invariant: a compile served
        # from disk produces the same bytes as one that computed fresh.
        from repro.engine import SimulationEngine, SimulationPlan

        base = np.array([[1.0, 0.3], [0.3, 1.0]], dtype=complex)
        plan = SimulationPlan.from_specs([base, 3.0 * base], seed=5)

        fresh = SimulationEngine(cache_dir=tmp_path / "a").run(plan, 128)
        SimulationEngine(cache_dir=tmp_path / "b").run(plan, 128)  # populate b
        from_disk_engine = SimulationEngine(cache_dir=tmp_path / "b")
        from_disk = from_disk_engine.run(plan, 128)
        assert from_disk_engine.cache.stats.disk_hits == 2

        for block_fresh, block_disk in zip(fresh.blocks, from_disk.blocks):
            assert block_fresh.samples.tobytes() == block_disk.samples.tobytes()
