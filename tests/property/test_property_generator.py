"""Property-based tests for the end-to-end generator invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CovarianceSpec, RayleighFadingGenerator
from repro.linalg import is_positive_semidefinite


@st.composite
def random_covariance_specs(draw, max_size=5):
    """Random valid (PSD) covariance specs with arbitrary unequal powers."""
    size = draw(st.integers(min_value=1, max_value=max_size))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    basis = rng.normal(size=(size, size + 1)) + 1j * rng.normal(size=(size, size + 1))
    covariance = basis @ basis.conj().T / (size + 1)
    # Rescale to random powers between 0.2 and 4.
    powers = rng.uniform(0.2, 4.0, size)
    scale = np.sqrt(powers / np.real(np.diag(covariance)))
    covariance = covariance * np.outer(scale, scale)
    return CovarianceSpec.from_covariance_matrix(covariance)


@st.composite
def random_hermitian_requests(draw, max_size=5):
    """Random Hermitian (possibly indefinite) covariance requests with unit diagonal."""
    size = draw(st.integers(min_value=2, max_value=max_size))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    raw = rng.uniform(-0.9, 0.9, (size, size)) + 1j * rng.uniform(-0.9, 0.9, (size, size))
    matrix = 0.5 * (raw + raw.conj().T)
    np.fill_diagonal(matrix, 1.0)
    return matrix


class TestGeneratorInvariants:
    @given(spec=random_covariance_specs(), n_samples=st.integers(min_value=1, max_value=64))
    @settings(max_examples=50, deadline=None)
    def test_output_shape_and_finiteness(self, spec, n_samples):
        generator = RayleighFadingGenerator(spec, rng=0)
        samples = generator.generate(n_samples)
        assert samples.shape == (spec.n_branches, n_samples)
        assert np.all(np.isfinite(samples.real)) and np.all(np.isfinite(samples.imag))

    @given(spec=random_covariance_specs())
    @settings(max_examples=30, deadline=None)
    def test_envelopes_are_non_negative(self, spec):
        generator = RayleighFadingGenerator(spec, rng=1)
        envelopes = generator.generate_envelopes(256).envelopes
        assert np.all(envelopes >= 0)

    @given(spec=random_covariance_specs(), seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_reproducibility_from_seed(self, spec, seed):
        a = RayleighFadingGenerator(spec, rng=seed).generate(32)
        b = RayleighFadingGenerator(spec, rng=seed).generate(32)
        assert np.array_equal(a, b)

    @given(request=random_hermitian_requests())
    @settings(max_examples=40, deadline=None)
    def test_effective_covariance_is_always_psd(self, request):
        generator = RayleighFadingGenerator(request, rng=2)
        assert is_positive_semidefinite(generator.effective_covariance)

    @given(request=random_hermitian_requests())
    @settings(max_examples=40, deadline=None)
    def test_repair_flag_matches_request_definiteness(self, request):
        generator = RayleighFadingGenerator(request, rng=3)
        was_psd = is_positive_semidefinite(request)
        assert generator.coloring.was_repaired == (not was_psd)

    @given(spec=random_covariance_specs())
    @settings(max_examples=15, deadline=None)
    def test_sample_covariance_converges_to_spec(self, spec):
        # A statistically loose but universal check: with 60k samples the
        # largest entry error should stay within ~8% of the largest power.
        generator = RayleighFadingGenerator(spec, rng=4)
        samples = generator.generate(60_000)
        achieved = samples @ samples.conj().T / samples.shape[1]
        tolerance = 0.08 * float(np.max(spec.gaussian_variances))
        assert np.max(np.abs(achieved - spec.matrix)) < tolerance
