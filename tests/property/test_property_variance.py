"""Property-based tests (hypothesis) for the power conversions of Eq. (11)/(14)/(15)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import envelope_power_to_gaussian_power, gaussian_power_to_envelope_power
from repro.core.variance import (
    RAYLEIGH_VARIANCE_FACTOR,
    rayleigh_mean_from_gaussian_power,
    rayleigh_moments,
    rayleigh_variance_from_gaussian_power,
)

positive_powers = st.floats(
    min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False
)
power_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=16),
    elements=positive_powers,
)


class TestConversionRoundTrip:
    @given(powers=power_arrays)
    @settings(max_examples=200)
    def test_round_trip_is_identity(self, powers):
        converted = gaussian_power_to_envelope_power(envelope_power_to_gaussian_power(powers))
        assert np.allclose(converted, powers, rtol=1e-12)

    @given(power=positive_powers)
    def test_gaussian_power_always_larger_than_envelope_variance(self, power):
        # sigma_g^2 = sigma_r^2 / (1 - pi/4) > sigma_r^2 since 1 - pi/4 < 1.
        assert envelope_power_to_gaussian_power(power) > power

    @given(power=positive_powers, scale=st.floats(min_value=1e-3, max_value=1e3))
    def test_conversion_is_linear(self, power, scale):
        assert np.isclose(
            envelope_power_to_gaussian_power(power * scale),
            envelope_power_to_gaussian_power(power) * scale,
            rtol=1e-12,
        )


class TestMomentIdentities:
    @given(power=positive_powers)
    def test_mean_squared_plus_variance_equals_power(self, power):
        mean, variance, second_moment = rayleigh_moments(power)
        assert np.isclose(mean**2 + variance, second_moment, rtol=1e-12)

    @given(power=positive_powers)
    def test_variance_fraction_constant(self, power):
        variance = rayleigh_variance_from_gaussian_power(power)
        assert np.isclose(variance / power, RAYLEIGH_VARIANCE_FACTOR, rtol=1e-12)

    @given(power=positive_powers)
    def test_mean_scales_as_sqrt(self, power):
        assert np.isclose(
            rayleigh_mean_from_gaussian_power(4.0 * power),
            2.0 * rayleigh_mean_from_gaussian_power(power),
            rtol=1e-12,
        )
