"""Property-based tests for PSD forcing and coloring over random Hermitian matrices."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import compute_coloring, force_positive_semidefinite
from repro.linalg import (
    clip_negative_eigenvalues,
    frobenius_distance,
    is_positive_semidefinite,
    replace_nonpositive_eigenvalues,
)


@st.composite
def hermitian_matrices(draw, min_size=2, max_size=8):
    """Random Hermitian matrices with entries of moderate magnitude."""
    size = draw(st.integers(min_value=min_size, max_value=max_size))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    scale = draw(st.floats(min_value=0.1, max_value=10.0))
    rng = np.random.default_rng(seed)
    raw = rng.normal(size=(size, size)) + 1j * rng.normal(size=(size, size))
    return scale * 0.5 * (raw + raw.conj().T)


@st.composite
def psd_matrices(draw, min_size=2, max_size=8):
    """Random positive semi-definite Hermitian matrices (possibly rank deficient)."""
    size = draw(st.integers(min_value=min_size, max_value=max_size))
    rank = draw(st.integers(min_value=1, max_value=size))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    basis = rng.normal(size=(size, rank)) + 1j * rng.normal(size=(size, rank))
    return basis @ basis.conj().T / rank


class TestPsdForcingProperties:
    @given(matrix=hermitian_matrices())
    @settings(max_examples=100, deadline=None)
    def test_clipping_always_yields_psd(self, matrix):
        assert is_positive_semidefinite(clip_negative_eigenvalues(matrix))

    @given(matrix=hermitian_matrices())
    @settings(max_examples=100, deadline=None)
    def test_clipping_is_idempotent(self, matrix):
        once = clip_negative_eigenvalues(matrix)
        twice = clip_negative_eigenvalues(once)
        assert frobenius_distance(once, twice) < 1e-8 * max(1.0, np.linalg.norm(once))

    @given(matrix=hermitian_matrices(), epsilon=st.floats(min_value=1e-8, max_value=1e-1))
    @settings(max_examples=100, deadline=None)
    def test_clip_never_further_than_epsilon_replacement(self, matrix, epsilon):
        clip_error = frobenius_distance(clip_negative_eigenvalues(matrix), matrix)
        epsilon_error = frobenius_distance(
            replace_nonpositive_eigenvalues(matrix, epsilon), matrix
        )
        assert clip_error <= epsilon_error + 1e-9

    @given(matrix=psd_matrices())
    @settings(max_examples=75, deadline=None)
    def test_psd_inputs_pass_through_unmodified(self, matrix):
        result = force_positive_semidefinite(matrix, method="clip")
        assert not result.was_modified
        assert result.frobenius_error == 0.0

    @given(matrix=hermitian_matrices())
    @settings(max_examples=75, deadline=None)
    def test_forcing_preserves_hermitian_symmetry(self, matrix):
        result = force_positive_semidefinite(matrix, method="clip")
        assert np.allclose(result.matrix, result.matrix.conj().T)


class TestColoringProperties:
    @given(matrix=psd_matrices())
    @settings(max_examples=75, deadline=None)
    def test_coloring_reconstructs_psd_matrices(self, matrix):
        decomposition = compute_coloring(matrix, method="eigen")
        scale = max(1.0, float(np.linalg.norm(matrix)))
        assert decomposition.reconstruction_error() < 1e-8 * scale

    @given(matrix=hermitian_matrices())
    @settings(max_examples=75, deadline=None)
    def test_coloring_realizes_the_forced_psd_matrix(self, matrix):
        decomposition = compute_coloring(matrix, method="eigen")
        realized = decomposition.coloring_matrix @ decomposition.coloring_matrix.conj().T
        scale = max(1.0, float(np.linalg.norm(matrix)))
        assert frobenius_distance(realized, decomposition.effective_covariance) < 1e-8 * scale
        assert is_positive_semidefinite(decomposition.effective_covariance)

    @given(matrix=psd_matrices())
    @settings(max_examples=50, deadline=None)
    def test_eigen_and_svd_coloring_agree_on_the_covariance(self, matrix):
        eigen = compute_coloring(matrix, method="eigen")
        svd = compute_coloring(matrix, method="svd")
        realized_eigen = eigen.coloring_matrix @ eigen.coloring_matrix.conj().T
        realized_svd = svd.coloring_matrix @ svd.coloring_matrix.conj().T
        scale = max(1.0, float(np.linalg.norm(matrix)))
        assert frobenius_distance(realized_eigen, realized_svd) < 1e-8 * scale
