"""Property tests: batched engine execution is bit-identical to looping.

The engine's core guarantee — for the same per-entry seeds, batched
plan → compile → execute produces exactly the samples a loop of
single-spec :class:`RayleighFadingGenerator` instances would — is asserted
here over randomized plans: mixed shapes, arbitrary unequal powers, non-PSD
requests that need repair, and every coloring/PSD-forcing combination the
batched path supports.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Simulator
from repro.core import CovarianceSpec, RayleighFadingGenerator
from repro.core.pipeline import generate_correlated_envelopes
from repro.engine import DecompositionCache, SimulationEngine, SimulationPlan


def _random_spec(rng, size, non_psd=False):
    """One random covariance spec with unequal powers; optionally indefinite."""
    if non_psd:
        raw = rng.uniform(-0.9, 0.9, (size, size)) + 1j * rng.uniform(-0.9, 0.9, (size, size))
        matrix = 0.5 * (raw + raw.conj().T)
        np.fill_diagonal(matrix, rng.uniform(0.5, 2.0, size))
        return CovarianceSpec.from_covariance_matrix(matrix)
    basis = rng.normal(size=(size, size + 1)) + 1j * rng.normal(size=(size, size + 1))
    covariance = basis @ basis.conj().T / (size + 1)
    powers = rng.uniform(0.2, 4.0, size)
    scale = np.sqrt(powers / np.real(np.diag(covariance)))
    return CovarianceSpec.from_covariance_matrix(covariance * np.outer(scale, scale))


@st.composite
def random_plans(draw, max_entries=6, allow_non_psd=True):
    """A random plan (mixed shapes/powers/PSD-ness) plus its entry seeds."""
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    n_entries = draw(st.integers(min_value=1, max_value=max_entries))
    rng = np.random.default_rng(seed)
    specs = []
    for index in range(n_entries):
        size = int(rng.integers(1, 5))
        non_psd = allow_non_psd and size >= 2 and bool(rng.integers(0, 2))
        specs.append(_random_spec(rng, size, non_psd=non_psd))
    seeds = [int(rng.integers(0, 2**62)) for _ in range(n_entries)]
    return specs, seeds


class TestBatchedEqualsLooped:
    @given(plan_data=random_plans(), n_samples=st.integers(min_value=1, max_value=64))
    @settings(max_examples=40, deadline=None)
    def test_bit_identical_samples(self, plan_data, n_samples):
        specs, seeds = plan_data
        plan = SimulationPlan.from_specs(specs, seeds=seeds)
        engine = SimulationEngine(cache=DecompositionCache())
        result = engine.run(plan, n_samples)
        for spec, seed, block in zip(specs, seeds, result.blocks):
            reference = RayleighFadingGenerator(
                spec, rng=seed, cache=DecompositionCache(maxsize=0)
            ).generate_gaussian(n_samples)
            assert np.array_equal(reference.samples, block.samples)
            assert np.array_equal(reference.variances, block.variances)
            assert reference.metadata["was_repaired"] == block.metadata["was_repaired"]

    @given(plan_data=random_plans(allow_non_psd=False))
    @settings(max_examples=20, deadline=None)
    def test_cache_hits_do_not_change_samples(self, plan_data):
        specs, seeds = plan_data
        plan = SimulationPlan.from_specs(specs, seeds=seeds)
        engine = SimulationEngine(cache=DecompositionCache())
        cold = engine.run(plan, 16)
        warm = engine.run(plan, 16)
        assert warm.compile_report.cache_misses == 0
        for cold_block, warm_block in zip(cold.blocks, warm.blocks):
            assert np.array_equal(cold_block.samples, warm_block.samples)

    @given(
        plan_data=random_plans(max_entries=4),
        coloring_method=st.sampled_from(["eigen", "svd"]),
        psd_method=st.sampled_from(["clip", "epsilon"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_method_variants_stay_identical(self, plan_data, coloring_method, psd_method):
        specs, seeds = plan_data
        plan = SimulationPlan.from_specs(
            specs, seeds=seeds, coloring_method=coloring_method, psd_method=psd_method
        )
        engine = SimulationEngine(cache=DecompositionCache())
        result = engine.run(plan, 8)
        for spec, seed, block in zip(specs, seeds, result.blocks):
            reference = RayleighFadingGenerator(
                spec,
                rng=seed,
                coloring_method=coloring_method,
                psd_method=psd_method,
                cache=DecompositionCache(maxsize=0),
            ).generate_gaussian(8)
            assert np.array_equal(reference.samples, block.samples)

    @given(plan_data=random_plans(max_entries=3))
    @settings(max_examples=15, deadline=None)
    def test_streaming_concatenation_matches_chunked_loop(self, plan_data):
        specs, seeds = plan_data
        plan = SimulationPlan.from_specs(specs, seeds=seeds)
        engine = SimulationEngine(cache=DecompositionCache())
        streamed = list(engine.stream(plan, block_size=16, n_blocks=3))
        for index, (spec, seed) in enumerate(zip(specs, seeds)):
            generator = RayleighFadingGenerator(
                spec, rng=seed, cache=DecompositionCache(maxsize=0)
            )
            expected = np.concatenate(
                [generator.generate_gaussian(16).samples for _ in range(3)], axis=1
            )
            got = np.concatenate(
                [batch.blocks[index].samples for batch in streamed], axis=1
            )
            assert np.array_equal(expected, got)


class TestSessionAPIEqualsLooped:
    """The session API inherits the engine guarantee unchanged.

    ``Simulator(backend="numpy")`` must be bit-identical both to looping
    single-spec generators and to the pre-redesign one-call helpers for the
    same seeds — the acceptance criterion of the unified-API redesign.
    """

    @given(plan_data=random_plans(), n_samples=st.integers(min_value=1, max_value=64))
    @settings(max_examples=25, deadline=None)
    def test_simulator_run_bit_identical_to_looped(self, plan_data, n_samples):
        specs, seeds = plan_data
        plan = SimulationPlan.from_specs(specs, seeds=seeds)
        simulator = Simulator(backend="numpy", cache=DecompositionCache())
        result = simulator.run(plan, n_samples)
        for spec, seed, block in zip(specs, seeds, result.blocks):
            reference = RayleighFadingGenerator(
                spec, rng=seed, cache=DecompositionCache(maxsize=0)
            ).generate_gaussian(n_samples)
            assert np.array_equal(reference.samples, block.samples)
            assert np.array_equal(reference.variances, block.variances)

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n_samples=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=25, deadline=None)
    def test_simulator_envelopes_bit_identical_to_classic_helper(self, seed, n_samples):
        rng = np.random.default_rng(seed)
        size = int(rng.integers(1, 5))
        spec = _random_spec(rng, size, non_psd=size >= 2 and bool(rng.integers(0, 2)))
        entry_seed = int(rng.integers(0, 2**62))
        via_session = Simulator(backend="numpy", cache=DecompositionCache()).envelopes(
            spec, n_samples, seed=entry_seed
        )
        via_helper = generate_correlated_envelopes(spec, n_samples, rng=entry_seed)
        assert np.array_equal(via_session.envelopes, via_helper.envelopes)

    @given(plan_data=random_plans(max_entries=4))
    @settings(max_examples=10, deadline=None)
    def test_simulator_stream_concatenation_matches_chunked_loop(self, plan_data):
        specs, seeds = plan_data
        plan = SimulationPlan.from_specs(specs, seeds=seeds)
        simulator = Simulator(backend="numpy", cache=DecompositionCache())
        streamed = list(simulator.stream(plan, block_size=7, n_blocks=3))
        for index, (spec, seed) in enumerate(zip(specs, seeds)):
            generator = RayleighFadingGenerator(
                spec, rng=seed, cache=DecompositionCache(maxsize=0)
            )
            expected = np.concatenate(
                [generator.generate_gaussian(7).samples for _ in range(3)], axis=1
            )
            got = np.concatenate(
                [batch.blocks[index].samples for batch in streamed], axis=1
            )
            assert np.array_equal(expected, got)
