"""Property tests: the fading-model zoo (standing invariant 6).

Every registered model must honour its declared invariant against the
looped scalar reference oracle (:func:`repro.models.reference_fading_samples`):

* ``rayleigh`` — the seam is the identity: a plan with ``fading=None`` (or
  a trivial spec) is byte-identical to the pre-model-zoo fast path, across
  ``execute_plan`` AND ``stream_plan`` at block sizes that do not divide
  the Doppler IDFT length;
* ``rician`` — byte-identity to the scalar reference;
* ``nakagami`` / ``weibull`` — allclose at the model's declared ``rtol``;
* shadowing — byte-identity; the per-branch gains are a pure function of
  the entry seed, constant across streamed blocks.

See the "Fading-model layer" section of ``docs/ARCHITECTURE.md``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CovarianceSpec, RayleighFadingGenerator
from repro.engine import (
    DecompositionCache,
    DopplerSpec,
    SimulationEngine,
    SimulationPlan,
)
from repro.models import (
    coerce_fading,
    get_fading_model,
    reference_fading_samples,
    shadowing_gains,
)

DOPPLER = DopplerSpec(normalized_doppler=0.05, n_points=64)


def _random_spec(rng, size):
    """One random PSD covariance spec with unequal powers."""
    basis = rng.normal(size=(size, size + 1)) + 1j * rng.normal(size=(size, size + 1))
    covariance = basis @ basis.conj().T / (size + 1)
    powers = rng.uniform(0.2, 4.0, size)
    scale = np.sqrt(powers / np.real(np.diag(covariance)))
    return CovarianceSpec.from_covariance_matrix(covariance * np.outer(scale, scale))


@st.composite
def fading_cases(draw, models=("rician", "nakagami", "weibull")):
    """A random (specs, seeds, fading spec) triple for the invariant suite."""
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    model = draw(st.sampled_from(models))
    shape = draw(st.floats(min_value=0.6, max_value=8.0))
    sigma = draw(st.sampled_from([0.0, 0.0, 3.0, 8.0]))
    rng = np.random.default_rng(seed)
    n_entries = int(rng.integers(1, 4))
    specs = [_random_spec(rng, int(rng.integers(1, 5))) for _ in range(n_entries)]
    seeds = [int(rng.integers(0, 2**62)) for _ in range(n_entries)]
    fading = coerce_fading(
        {"model": model, "shape": shape, "shadowing_sigma_db": sigma}
    )
    return specs, seeds, fading


def _assert_invariant(fading, reference, got):
    """Assert the model's declared invariant between reference and samples."""
    descriptor = get_fading_model(fading.model)
    if descriptor.exact:
        assert np.array_equal(reference, got)
    else:
        assert np.allclose(got, reference, rtol=descriptor.rtol, atol=1e-15)


class TestRayleighFastPathByteIdentity:
    """Invariant 6a: ``fading=None`` is the untouched pre-refactor path."""

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_trivial_spec_collapses_to_fast_path(self, seed):
        rng = np.random.default_rng(seed)
        spec = _random_spec(rng, int(rng.integers(1, 5)))
        entry_seed = int(rng.integers(0, 2**62))
        plain = SimulationPlan()
        plain.add(spec, seed=entry_seed)
        trivial = SimulationPlan()
        trivial.add(
            spec,
            seed=entry_seed,
            fading={"model": "rayleigh", "shadowing_sigma_db": 0.0},
        )
        assert trivial[0].fading is None  # trivial specs collapse
        engine = SimulationEngine(cache=DecompositionCache())
        a = engine.run(plain, 57)
        b = engine.run(trivial, 57)
        assert np.array_equal(a.blocks[0].samples, b.blocks[0].samples)

    def test_rayleigh_byte_identity_execute_and_stream_non_dividing_blocks(self):
        """Doppler streaming at block sizes not dividing M stays untouched."""
        rng = np.random.default_rng(99)
        spec = _random_spec(rng, 3)
        for block_size in (23, 37, 63):  # none divides M = 64
            plain = SimulationPlan()
            plain.add(spec, seed=11, doppler=DOPPLER)
            trivial = SimulationPlan()
            trivial.add(spec, seed=11, doppler=DOPPLER, fading="rayleigh")
            engine = SimulationEngine(cache=DecompositionCache())
            plain_blocks = [
                batch.blocks[0].samples
                for batch in engine.stream(plain, block_size=block_size, n_blocks=4)
            ]
            trivial_blocks = [
                batch.blocks[0].samples
                for batch in engine.stream(trivial, block_size=block_size, n_blocks=4)
            ]
            for a, b in zip(plain_blocks, trivial_blocks):
                assert np.array_equal(a, b)
            # Streamed concatenation equals one long execute record.
            long = engine.run(plain, 4 * block_size).blocks[0].samples
            assert np.array_equal(np.concatenate(plain_blocks, axis=1), long)


class TestModelInvariantsAgainstScalarReference:
    """Invariant 6b: each model matches the looped scalar oracle."""

    @given(case=fading_cases())
    @settings(max_examples=25, deadline=None)
    def test_snapshot_models_match_reference(self, case):
        specs, seeds, fading = case
        plan = SimulationPlan.from_specs(specs, seeds=seeds, fading=fading)
        engine = SimulationEngine(cache=DecompositionCache())
        result = engine.run(plan, 48)
        for spec, seed, block in zip(specs, seeds, result.blocks):
            base = RayleighFadingGenerator(
                spec, rng=seed, cache=DecompositionCache(maxsize=0)
            ).generate_gaussian(48)
            reference = reference_fading_samples(
                base.samples, spec.gaussian_variances, fading, seed=seed
            )
            _assert_invariant(fading, reference, block.samples)

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        model=st.sampled_from(["rician", "nakagami", "weibull"]),
    )
    @settings(max_examples=10, deadline=None)
    def test_doppler_models_match_reference(self, seed, model):
        rng = np.random.default_rng(seed)
        spec = _random_spec(rng, int(rng.integers(1, 4)))
        entry_seed = int(rng.integers(0, 2**62))
        fading = coerce_fading({"model": model, "shape": 2.5})
        engine = SimulationEngine(cache=DecompositionCache())
        plain = SimulationPlan()
        plain.add(spec, seed=entry_seed, doppler=DOPPLER)
        faded = SimulationPlan()
        faded.add(spec, seed=entry_seed, doppler=DOPPLER, fading=fading)
        base = engine.run(plain, 100).blocks[0].samples
        got = engine.run(faded, 100).blocks[0].samples
        reference = reference_fading_samples(
            base, spec.gaussian_variances, fading, seed=entry_seed
        )
        _assert_invariant(fading, reference, got)

    def test_rician_mean_matches_los_amplitude(self):
        """Physical sanity: the Rician LOS mean is sqrt(K*Omega/(K+1))."""
        spec = CovarianceSpec.from_covariance_matrix(np.eye(2, dtype=complex))
        plan = SimulationPlan()
        plan.add(spec, seed=5, fading={"model": "rician", "shape": 9.0})
        result = SimulationEngine(cache=DecompositionCache()).run(plan, 50_000)
        means = result.blocks[0].samples.mean(axis=1)
        expected = np.sqrt(9.0 / 10.0)
        assert np.allclose(means.real, expected, atol=0.02)
        assert np.allclose(means.imag, 0.0, atol=0.02)

    def test_envelope_transforms_preserve_phase(self):
        rng = np.random.default_rng(0)
        spec = _random_spec(rng, 2)
        engine = SimulationEngine(cache=DecompositionCache())
        plain = SimulationPlan()
        plain.add(spec, seed=3)
        base = engine.run(plain, 64).blocks[0].samples
        for model, shape in (("nakagami", 2.0), ("weibull", 1.3)):
            faded_plan = SimulationPlan()
            faded_plan.add(spec, seed=3, fading={"model": model, "shape": shape})
            faded = engine.run(faded_plan, 64).blocks[0].samples
            assert np.allclose(
                np.angle(faded), np.angle(base), rtol=0.0, atol=1e-12
            )


class TestShadowingComposition:
    """Invariant 6c: shadowing gains are seed-pure and block-constant."""

    @given(
        seed=st.integers(min_value=0, max_value=2**62),
        sigma=st.floats(min_value=0.1, max_value=12.0),
        n=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=25, deadline=None)
    def test_gains_are_pure_in_the_seed(self, seed, sigma, n):
        a = shadowing_gains(seed, sigma, n)
        b = shadowing_gains(seed, sigma, n)
        assert np.array_equal(a, b)
        assert a.shape == (n,)
        assert np.all(a > 0)

    def test_gains_constant_across_streamed_blocks(self):
        rng = np.random.default_rng(17)
        spec = _random_spec(rng, 3)
        fading = coerce_fading({"model": "rayleigh", "shadowing_sigma_db": 6.0})
        engine = SimulationEngine(cache=DecompositionCache())
        plain = SimulationPlan()
        plain.add(spec, seed=23)
        faded_plan = SimulationPlan()
        faded_plan.add(spec, seed=23, fading=fading)
        gains = shadowing_gains(23, 6.0, 3)[:, np.newaxis]
        plain_blocks = list(engine.stream(plain, block_size=19, n_blocks=3))
        faded_blocks = list(engine.stream(faded_plan, block_size=19, n_blocks=3))
        for plain_batch, faded_batch in zip(plain_blocks, faded_blocks):
            assert np.array_equal(
                faded_batch.blocks[0].samples,
                plain_batch.blocks[0].samples * gains,
            )

    def test_shadowing_requires_integer_seed(self):
        spec = CovarianceSpec.from_covariance_matrix(np.eye(2, dtype=complex))
        plan = SimulationPlan()
        plan.add(
            spec,
            seed=np.random.default_rng(3),
            fading={"model": "rayleigh", "shadowing_sigma_db": 3.0},
        )
        engine = SimulationEngine(cache=DecompositionCache())
        with pytest.raises(ValueError, match="integer per-entry seed"):
            engine.run(plan, 8)


class TestStreamExecuteConsistency:
    """Faded Doppler streams slice exactly like one long execute record."""

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        block_size=st.sampled_from([23, 37, 63, 65]),
    )
    @settings(max_examples=10, deadline=None)
    def test_doppler_stream_concatenation_equals_execute(self, seed, block_size):
        rng = np.random.default_rng(seed)
        spec = _random_spec(rng, int(rng.integers(1, 4)))
        entry_seed = int(rng.integers(0, 2**62))
        plan = SimulationPlan()
        plan.add(
            spec,
            seed=entry_seed,
            doppler=DOPPLER,
            fading={"model": "rician", "shape": 3.0, "shadowing_sigma_db": 4.0},
        )
        engine = SimulationEngine(cache=DecompositionCache())
        streamed = np.concatenate(
            [
                batch.blocks[0].samples
                for batch in engine.stream(plan, block_size=block_size, n_blocks=4)
            ],
            axis=1,
        )
        long = engine.run(plan, 4 * block_size).blocks[0].samples
        assert np.array_equal(streamed, long)
