"""Property: concurrent eviction over one shared store is quarantine-or-miss.

Four real subprocesses hammer a single :class:`repro.engine.store.ArtifactStore`
namespace with a byte bound small enough that every round of spills forces
LRU eviction passes — the exact contention profile of sharded sweep workers
(:mod:`repro.shard`) sharing one ``cache_dir``.  The advisory eviction lock
must make the churn invisible to readers:

* **no reader ever surfaces a corruption error** — an artifact unlinked by a
  concurrent eviction pass is a plain miss, never a digest failure or an
  exception (``corruptions == 0`` in every worker);
* **per-tier counters are exactly conserved** — each worker's ``hits +
  misses`` equals the number of lookups it issued, under any interleaving;
* **the byte bound holds** — once the storm is over, a single eviction pass
  restores ``usage() <= max_bytes`` (transient overshoot while passes
  contend is allowed; a *standing* violation is not).

Every hit is also content-verified: a lookup may miss, but it may never
return the wrong payload.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.engine.store import ArtifactStore

_SRC = str(Path(__file__).resolve().parents[2] / "src")

N_WORKERS = 4
N_KEYS = 12
N_ROUNDS = 3

# Each worker opens a *fresh* store per round (a new shard attaching to the
# shared cache_dir), so keys evicted by some other process's pass get
# re-spilled instead of staying in the first store's no-spill set.  The byte
# bound is measured from a probe entry so roughly 3.5 entries fit: every
# round of 12 keys is guaranteed to churn through eviction passes.
_WORKER = """
import json, sys
import numpy as np
from repro.engine.store import ArtifactStore

worker_index, cache_dir, out_path = int(sys.argv[1]), sys.argv[2], sys.argv[3]
N_KEYS, N_ROUNDS = int(sys.argv[4]), int(sys.argv[5])


def _dump(payload):
    return {"values": payload["values"]}, {"key": payload["key"]}


def _load(arrays, meta):
    return {"values": arrays["values"], "key": meta["key"]}


def _payload(key_index):
    # Deterministic per-key contents so any hit can be content-verified.
    values = np.arange(512, dtype=np.float64) * (key_index + 1)
    return {"values": values, "key": f"k{key_index:03d}"}


def _make_store(directory, max_bytes):
    return ArtifactStore(
        "stress", dump=_dump, load=_load, cache_dir=directory, max_bytes=max_bytes
    )


# Measure one entry in a private scratch dir; every worker computes the
# same bound deterministically.
probe = _make_store(cache_dir + f"/probe-{worker_index}", 1 << 30)
probe.put("probe", _payload(0))
entry_bytes = probe.usage()[1]
assert entry_bytes > 0
max_bytes = int(3.5 * entry_bytes)

counters = {
    "lookups": 0, "puts": 0, "bad_hits": 0,
    "hits": 0, "misses": 0, "corruptions": 0, "evictions": 0,
}
for round_index in range(N_ROUNDS):
    store = _make_store(cache_dir, max_bytes)
    # Worker-specific rotation: everyone touches every key, nobody walks
    # the keyspace in the same order, so evictions hit keys others are
    # about to read.
    offset = worker_index * 3 + round_index
    for step in range(N_KEYS):
        key_index = (step + offset) % N_KEYS
        payload = _payload(key_index)
        counters["lookups"] += 1
        found = store.lookup(payload["key"])
        if found is None:
            store.put(payload["key"], payload)
            counters["puts"] += 1
        elif (
            found["key"] != payload["key"]
            or found["values"].tobytes() != payload["values"].tobytes()
        ):
            counters["bad_hits"] += 1
    stats = store.stats
    counters["hits"] += stats.hits
    counters["misses"] += stats.misses
    counters["corruptions"] += stats.corruptions
    counters["evictions"] += stats.evictions

counters["max_bytes"] = max_bytes
json.dump(counters, open(out_path, "w"))
"""


def _stress_dump(payload):
    return {"values": payload["values"]}, {"key": payload["key"]}


def _stress_load(arrays, meta):
    return {"values": arrays["values"], "key": meta["key"]}


@pytest.mark.slow
class TestConcurrentEvictionStress:
    def test_four_processes_churning_one_tiny_store(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
        env.pop("REPRO_CACHE_DIR", None)

        out_paths = [tmp_path / f"worker-{index}.json" for index in range(N_WORKERS)]
        procs = [
            subprocess.Popen(
                [
                    sys.executable,
                    "-c",
                    _WORKER,
                    str(index),
                    str(cache_dir),
                    str(out_paths[index]),
                    str(N_KEYS),
                    str(N_ROUNDS),
                ],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
            )
            for index in range(N_WORKERS)
        ]
        outputs = [proc.communicate(timeout=300)[0] for proc in procs]
        for proc, output in zip(procs, outputs):
            assert proc.returncode == 0, output

        reports = [json.loads(path.read_text()) for path in out_paths]
        max_bytes = reports[0]["max_bytes"]
        assert all(report["max_bytes"] == max_bytes for report in reports)

        for report in reports:
            # Conservation: every lookup resolved to exactly one of hit or
            # miss — no interleaving loses or double-counts an outcome.
            assert report["hits"] + report["misses"] == report["lookups"]
            # Quarantine-or-miss, never an error: artifacts unlinked by a
            # concurrent eviction pass read as plain misses.
            assert report["corruptions"] == 0
            assert report["bad_hits"] == 0
            assert report["lookups"] == N_KEYS * N_ROUNDS

        # The tiny bound actually forced churn somewhere.
        assert sum(report["evictions"] for report in reports) >= 1
        assert sum(report["puts"] for report in reports) > N_KEYS

        # Standing byte bound: with the storm over, one uncontended pass
        # restores the invariant (no worker left it violated forever).
        store = ArtifactStore(
            "stress",
            dump=_stress_dump,
            load=_stress_load,
            cache_dir=cache_dir,
            max_bytes=max_bytes,
        )
        assert store.evict_pass()
        n_entries, total_bytes = store.usage()
        assert total_bytes <= max_bytes
        assert n_entries >= 1
        # The churn never produced a standing quarantine file either: the
        # eviction lock means no reader ever saw torn bytes to quarantine.
        assert not list((cache_dir / "stress").glob("*.quarantine"))
