"""Property: a sharded sweep is bit-identical to the single-process run.

Standing invariant 7: sharding is pure orchestration.  ``run_sharded``
splits a plan across real worker subprocesses that share one ``cache_dir``,
and the merged result must be byte-for-byte equal to ``engine.run(plan)``
in a single fully detached process — across mixed Doppler/fading entries,
non-int seeds, and Doppler block sizes that do not divide ``n_samples``.

The suite also proves the two operational claims of the sharding layer:

* **compile-once** — with ``warm_first`` scheduling, the pathfinder shard
  compiles every unique artifact cold and all later shards warm-hit the
  shared tiers (zero decomposition disk misses, zero Doppler filter
  builds), observed through the per-tier cache counters each worker
  reports;
* **crash tolerance** — a worker SIGKILLed mid-slice marks its slice
  failed by index, the survivors still merge-collect, and a
  ``retry_failed`` rerun against the same ``work_dir`` and now-warm cache
  completes bit-identically while reusing the published survivor outputs.
"""

import os

import numpy as np
import pytest

from repro.engine import (
    CompiledPlanCache,
    DecompositionCache,
    DopplerFilterCache,
    DopplerSpec,
    FadingSpec,
    SimulationEngine,
    SimulationPlan,
)
from repro.shard import run_sharded
from repro.shard.worker import KILL_SLICE_ENV

N_SAMPLES = 96  # not a multiple of the Doppler block size below
_DOPPLER = DopplerSpec(normalized_doppler=0.05, n_points=64)


def _mixed_plan() -> SimulationPlan:
    """Nine mixed entries over two unique matrices and one Doppler key.

    Every unique artifact — both covariance groups and the single Doppler
    filter — appears in the first three entries, i.e. inside slice 0 of a
    3-shard partition, so under ``warm_first`` scheduling the later shards
    must compile nothing: the compile-once assertions are deterministic,
    not racy.
    """
    base = np.array([[1.0, 0.4 + 0.1j], [0.4 - 0.1j, 2.0]], dtype=complex)
    scaled = 2.0 * base
    rician = FadingSpec(model="rician", shape=3.0)
    shadowed = FadingSpec(model="nakagami", shape=2.5, shadowing_sigma_db=1.0)

    plan = SimulationPlan()
    # Slice 0 — the pathfinder covers every unique compile artifact.
    plan.add(base, seed=11, label="s0-base")
    plan.add(scaled, seed=np.int64(12), fading=rician, label="s0-rician")
    plan.add(base, seed=13, doppler=_DOPPLER, label="s0-doppler")
    # Slices 1 and 2 — repeats with fresh seeds, fading, and Doppler.
    plan.add(base, seed=21, fading=shadowed, label="s1-shadowed")
    plan.add(scaled, seed=22, doppler=_DOPPLER, label="s1-doppler")
    plan.add(base, seed=23, label="s1-base")
    plan.add(scaled, seed=31, label="s2-scaled")
    plan.add(base, seed=32, doppler=_DOPPLER, label="s2-doppler")
    plan.add(scaled, seed=33, fading=rician, label="s2-rician")
    return plan


def _solo_reference(plan: SimulationPlan):
    """Run ``plan`` in this process with every cache tier detached."""
    engine = SimulationEngine(
        cache=DecompositionCache(),
        filter_cache=DopplerFilterCache(),
        plan_cache=CompiledPlanCache(),
    )
    return engine.run(plan, N_SAMPLES)


def _assert_bit_identical(merged, reference) -> None:
    assert len(merged.blocks) == len(reference.blocks)
    for index, (got, want) in enumerate(zip(merged.blocks, reference.blocks)):
        assert got.samples.tobytes() == want.samples.tobytes(), index
        assert got.variances.tobytes() == want.variances.tobytes(), index
        assert got.metadata["plan_index"] == index
        assert got.metadata["label"] == want.metadata.get("label")


@pytest.mark.slow
class TestShardedBitIdentity:
    def test_three_shards_match_solo_and_compile_once(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        plan = _mixed_plan()
        reference = _solo_reference(plan)

        result = run_sharded(
            plan,
            N_SAMPLES,
            n_shards=3,
            cache_dir=tmp_path / "cache",
            work_dir=tmp_path / "work",
        )
        assert result.ok
        assert result.failed == ()
        assert [s.start for s in result.slices] == [0, 3, 6]
        _assert_bit_identical(result.merged, reference)

        # Compile-once: slice 0 compiled both unique matrices and the one
        # Doppler filter cold; every later shard warm-hit the shared tiers
        # (a filter disk miss would mean a cold Young–Beaulieu build).
        metas = result.metas
        assert metas[0]["tiers"]["decompositions"]["disk_misses"] == 2
        assert metas[0]["tiers"]["filters"]["disk_misses"] == 1
        for meta in metas[1:]:
            assert meta["tiers"]["decompositions"]["disk_misses"] == 0
            assert meta["tiers"]["decompositions"]["disk_hits"] >= 1
            assert meta["tiers"]["filters"]["disk_misses"] == 0
            assert meta["tiers"]["filters"]["disk_hits"] >= 1
            assert meta["compile_report"]["doppler_filter_cache_hits"] == 1
        totals = result.tier_totals()
        assert totals["decompositions_disk_misses"] == 2
        assert totals["filters_disk_misses"] == 1

    def test_warm_rerun_loads_whole_plans_from_shared_cache(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        plan = _mixed_plan()
        reference = _solo_reference(plan)
        cache_dir = tmp_path / "cache"

        cold = run_sharded(
            plan, N_SAMPLES, n_shards=3, cache_dir=cache_dir,
            work_dir=tmp_path / "work-cold",
        )
        assert cold.ok
        warm = run_sharded(
            plan, N_SAMPLES, n_shards=3, cache_dir=cache_dir,
            work_dir=tmp_path / "work-warm",
        )
        assert warm.ok
        _assert_bit_identical(warm.merged, reference)
        # Every shard of the warm run loads its whole compiled plan from
        # the shared plans/ tier — no per-matrix work at all.
        for meta in warm.metas:
            assert meta["compile_report"]["plan_cache_hits"] == 1
            assert meta["tiers"]["decompositions"]["disk_misses"] == 0
        assert warm.tier_totals()["plan_cache_hits"] == 3


@pytest.mark.slow
class TestShardCrashTolerance:
    def test_sigkilled_slice_reported_then_retried_bit_identically(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        plan = _mixed_plan()
        reference = _solo_reference(plan)
        cache_dir = tmp_path / "cache"
        work_dir = tmp_path / "work"

        lines = []
        broken = run_sharded(
            plan,
            N_SAMPLES,
            n_shards=3,
            cache_dir=cache_dir,
            work_dir=work_dir,
            extra_env={KILL_SLICE_ENV: "1"},
            progress=lambda index, line: lines.append((index, line)),
        )
        # The killed worker's slice is failed by index; survivors are kept.
        assert broken.failed == (1,)
        assert broken.merged is None
        assert not broken.ok
        assert broken.results[0] is not None
        assert broken.results[2] is not None
        assert broken.results[1] is None
        assert any("FAILED" in line for index, line in lines if index == 1)

        retry = run_sharded(
            plan,
            N_SAMPLES,
            n_shards=3,
            cache_dir=cache_dir,
            work_dir=work_dir,
            retry_failed=True,
            progress=lambda index, line: lines.append((index, line)),
        )
        assert retry.ok
        assert retry.failed == ()
        _assert_bit_identical(retry.merged, reference)
        # Survivor outputs were reused from the work_dir, and the retried
        # slice compiled warm: its plan artifact was already published to
        # the shared cache before the worker was killed.
        reused = [line for index, line in lines if "reused published" in line]
        assert len(reused) == 2
        assert retry.metas[1]["compile_report"]["plan_cache_hits"] == 1

    def test_worker_env_drops_inherited_cache_dir(self, tmp_path, monkeypatch):
        # An inherited REPRO_CACHE_DIR must not re-route the shared tiers:
        # only the explicit cache_dir may act inside workers.
        hijack = tmp_path / "hijack"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(hijack))
        plan = SimulationPlan()
        plan.add(np.eye(2, dtype=complex), seed=5, label="only")
        result = run_sharded(
            plan,
            8,
            n_shards=1,
            cache_dir=tmp_path / "cache",
            work_dir=tmp_path / "work",
        )
        assert result.ok
        assert not hijack.exists()
        assert any(
            (tmp_path / "cache").glob("**/*.npz")
        ), "explicit cache_dir saw no spills"
        assert os.environ["REPRO_CACHE_DIR"] == str(hijack)  # parent untouched
