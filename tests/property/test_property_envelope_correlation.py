"""Property-based tests for the envelope-correlation mapping."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    envelope_correlation_approximation,
    envelope_correlation_from_gaussian,
    gaussian_correlation_from_envelope,
)

magnitudes = st.floats(min_value=0.0, max_value=0.999, allow_nan=False)


class TestEnvelopeCorrelationProperties:
    @given(rho=magnitudes)
    @settings(max_examples=200)
    def test_output_is_in_unit_interval(self, rho):
        value = float(envelope_correlation_from_gaussian(rho))
        assert 0.0 <= value <= 1.0

    @given(rho=magnitudes)
    @settings(max_examples=200)
    def test_exact_never_exceeds_square_approximation(self, rho):
        exact = float(envelope_correlation_from_gaussian(rho))
        approx = float(envelope_correlation_approximation(rho))
        assert exact <= approx + 1e-12

    @given(rho=magnitudes)
    @settings(max_examples=200)
    def test_deviation_from_square_is_bounded(self, rho):
        exact = float(envelope_correlation_from_gaussian(rho))
        approx = float(envelope_correlation_approximation(rho))
        assert abs(exact - approx) < 0.03

    @given(rho1=magnitudes, rho2=magnitudes)
    @settings(max_examples=200)
    def test_monotonicity(self, rho1, rho2):
        low, high = sorted((rho1, rho2))
        assert envelope_correlation_from_gaussian(low) <= envelope_correlation_from_gaussian(
            high
        ) + 1e-12

    @given(rho=st.floats(min_value=0.0, max_value=0.99, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_round_trip_through_inverse(self, rho):
        forward = float(envelope_correlation_from_gaussian(rho))
        recovered = float(gaussian_correlation_from_envelope(forward))
        assert abs(recovered - rho) < 1e-5

    @given(envelope=st.floats(min_value=0.0, max_value=0.99, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_inverse_then_forward(self, envelope):
        rho = float(gaussian_correlation_from_envelope(envelope))
        assert 0.0 <= rho < 1.0
        assert abs(float(envelope_correlation_from_gaussian(rho)) - envelope) < 1e-5
