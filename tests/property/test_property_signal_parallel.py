"""Property-based tests for the Fourier substrate and the work partitioner."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.parallel import partition_counts
from repro.signal import naive_dft, radix2_fft, radix2_ifft


@st.composite
def power_of_two_complex_sequences(draw):
    exponent = draw(st.integers(min_value=0, max_value=9))
    n = 1 << exponent
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    return rng.normal(size=n) + 1j * rng.normal(size=n)


class TestFftProperties:
    @given(x=power_of_two_complex_sequences())
    @settings(max_examples=75, deadline=None)
    def test_radix2_matches_numpy(self, x):
        assert np.allclose(radix2_fft(x), np.fft.fft(x), atol=1e-8 * max(1.0, np.abs(x).max()))

    @given(x=power_of_two_complex_sequences())
    @settings(max_examples=75, deadline=None)
    def test_round_trip_identity(self, x):
        assert np.allclose(radix2_ifft(radix2_fft(x)), x, atol=1e-9 * max(1.0, np.abs(x).max()))

    @given(x=power_of_two_complex_sequences())
    @settings(max_examples=50, deadline=None)
    def test_parseval_energy_conservation(self, x):
        spectrum = radix2_fft(x)
        assert np.isclose(
            np.sum(np.abs(x) ** 2), np.sum(np.abs(spectrum) ** 2) / len(x), rtol=1e-9
        )

    @given(
        x=hnp.arrays(
            dtype=np.complex128,
            shape=st.integers(min_value=1, max_value=48),
            elements=st.complex_numbers(max_magnitude=100, allow_nan=False, allow_infinity=False),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_naive_dft_matches_numpy_for_any_length(self, x):
        assert np.allclose(naive_dft(x), np.fft.fft(x), atol=1e-7 * max(1.0, np.abs(x).max()))


class TestPartitionProperties:
    @given(
        total=st.integers(min_value=0, max_value=10_000),
        parts=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=200)
    def test_partition_sums_and_balance(self, total, parts):
        counts = partition_counts(total, parts)
        assert len(counts) == parts
        assert sum(counts) == total
        assert all(count >= 0 for count in counts)
        assert max(counts) - min(counts) <= 1
