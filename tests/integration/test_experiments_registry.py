"""Integration tests: every registered experiment runs and passes its acceptance criteria."""

import numpy as np
import pytest

from repro.exceptions import ExperimentError
from repro.experiments import EXPERIMENTS, list_experiments, run_all, run_experiment
from repro.experiments.reporting import ExperimentResult

#: Cheaper-than-default settings for the statistically heavy experiments so the
#: registry sweep stays fast; the acceptance thresholds are unchanged.
FAST_KWARGS = {
    "fig4a-spectral-envelopes": {"n_blocks": 4},
    "fig4b-spatial-envelopes": {"n_blocks": 4},
    "non-psd-recovery": {"n_samples": 60_000, "sizes": (3, 6)},
    "psd-forcing-precision": {"n_matrices": 4},
    "unequal-power": {"n_samples": 150_000, "n_blocks": 3},
    "baseline-comparison": {},
    "scaling-n": {"branch_counts": (2, 8, 32), "snapshot_samples": 20_000},
    "scaling-batch": {"batch_sizes": (1, 8), "n_samples": 128},
    "scaling-doppler-batch": {"batch_sizes": (1, 8), "n_points": 64},
}


class TestRegistry:
    def test_all_design_doc_experiments_registered(self):
        expected = {
            "eq22-spectral-covariance",
            "eq23-spatial-covariance",
            "fig4a-spectral-envelopes",
            "fig4b-spatial-envelopes",
            "doppler-autocorrelation",
            "doppler-substrate",
            "variance-compensation",
            "non-psd-recovery",
            "psd-forcing-precision",
            "unequal-power",
            "coloring-methods",
            "baseline-comparison",
            "scaling-n",
            "scaling-batch",
            "scaling-doppler-batch",
        }
        assert expected == set(list_experiments())

    def test_unknown_experiment_raises(self):
        with pytest.raises(ExperimentError):
            run_experiment("not-an-experiment")

    def test_run_all_subset(self):
        results = run_all(["eq22-spectral-covariance", "eq23-spatial-covariance"])
        assert len(results) == 2
        assert all(isinstance(result, ExperimentResult) for result in results)


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
def test_experiment_runs_and_passes(experiment_id):
    kwargs = FAST_KWARGS.get(experiment_id, {})
    result = run_experiment(experiment_id, **kwargs)
    assert isinstance(result, ExperimentResult)
    assert result.experiment_id == experiment_id
    assert result.tables, "every experiment must report at least one table"
    assert result.passed, result.render()


def test_results_are_renderable_and_finite():
    result = run_experiment("eq22-spectral-covariance")
    text = result.render(include_series=True)
    assert "experiment" in text
    for value in result.metrics.values():
        assert np.isfinite(value)
