"""Smoke tests: the shipped examples run end to end.

Only the faster examples are executed in-process (the heavier Monte-Carlo
examples are exercised indirectly through the APIs they call); the goal is to
catch import errors and interface drift, not to re-validate statistics.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def _run_example(name: str, capsys) -> str:
    """Execute an example as __main__ and return its stdout."""
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.slow
class TestExamplesRun:
    def test_examples_directory_is_complete(self):
        present = {path.name for path in EXAMPLES_DIR.glob("*.py")}
        expected = {
            "quickstart.py",
            "ofdm_spectral_correlation.py",
            "mimo_spatial_correlation.py",
            "unequal_power_and_nonpsd.py",
            "envelope_correlation_input.py",
            "diversity_receiver_simulation.py",
            "streaming_and_parallel.py",
        }
        assert expected.issubset(present)

    def test_quickstart(self, capsys):
        out = _run_example("quickstart.py", capsys)
        assert "generated 3 branches" in out
        assert "covariance match" in out

    def test_ofdm_spectral_correlation(self, capsys):
        out = _run_example("ofdm_spectral_correlation.py", capsys)
        assert "Eq. 22" in out or "Eq. (22)" in out or "covariance matrix" in out
        assert "overall: PASS" in out

    def test_unequal_power_and_nonpsd(self, capsys):
        out = _run_example("unequal_power_and_nonpsd.py", capsys)
        assert "rejects the request" in out
        assert "Cholesky-based baseline fails" in out


def test_examples_have_module_docstrings():
    for path in EXAMPLES_DIR.glob("*.py"):
        source = path.read_text(encoding="utf8")
        assert source.lstrip().startswith('"""'), f"{path.name} is missing a docstring"
