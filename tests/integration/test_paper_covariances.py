"""Integration tests: the physical models reproduce Eq. (22) and Eq. (23) and the
generators realize those covariance matrices statistically."""

import numpy as np
import pytest

from repro import (
    MIMOArrayScenario,
    OFDMScenario,
    RayleighFadingGenerator,
    covariance_match_report,
    envelope_power_report,
)
from repro.experiments import paper_values as pv


class TestEq22EndToEnd:
    @pytest.fixture(scope="class")
    def spec(self):
        return pv.paper_ofdm_scenario().covariance_spec(np.ones(3))

    def test_model_reproduces_published_matrix(self, spec):
        assert np.allclose(spec.matrix, pv.EQ22_COVARIANCE, atol=5e-4)

    def test_matrix_is_positive_definite_as_stated(self, spec):
        assert np.min(np.linalg.eigvalsh(spec.matrix)) > 0

    def test_generator_realizes_matrix(self, spec):
        generator = RayleighFadingGenerator(spec, rng=101)
        samples = generator.generate(400_000)
        report = covariance_match_report(samples, spec.matrix)
        assert report.relative_error < 0.02

    def test_envelopes_have_unit_gaussian_power(self, spec):
        generator = RayleighFadingGenerator(spec, rng=102)
        envelopes = np.abs(generator.generate(300_000))
        report = envelope_power_report(envelopes, spec.gaussian_variances)
        assert report.max_relative_power_error() < 0.02


class TestEq23EndToEnd:
    @pytest.fixture(scope="class")
    def spec(self):
        return pv.paper_mimo_scenario().covariance_spec(np.ones(3))

    def test_model_reproduces_published_matrix(self, spec):
        assert np.allclose(spec.matrix, pv.EQ23_COVARIANCE, atol=2e-4)

    def test_matrix_is_real_as_stated(self, spec):
        assert np.max(np.abs(np.imag(spec.matrix))) < 1e-12

    def test_generator_realizes_matrix(self, spec):
        generator = RayleighFadingGenerator(spec, rng=103)
        samples = generator.generate(400_000)
        report = covariance_match_report(samples, spec.matrix)
        assert report.relative_error < 0.02

    def test_adjacent_antennas_more_correlated_than_outer_pair(self, spec):
        generator = RayleighFadingGenerator(spec, rng=104)
        samples = generator.generate(200_000)
        achieved = samples @ samples.conj().T / samples.shape[1]
        assert abs(achieved[0, 1]) > abs(achieved[0, 2])


class TestScenarioRoundTrip:
    def test_scenario_objects_used_directly_by_pipeline(self):
        from repro import generate_from_scenario

        scenario = MIMOArrayScenario(n_antennas=3, spacing_wavelengths=1.0)
        block = generate_from_scenario(scenario, np.ones(3), 50_000, rng=105)
        measured_power = np.mean(block.envelopes**2, axis=1)
        assert np.allclose(measured_power, 1.0, atol=0.05)

    def test_ofdm_scenario_doppler_defaults_into_pipeline(self):
        from repro import generate_from_scenario

        scenario = pv.paper_ofdm_scenario(n_points=1024)
        block = generate_from_scenario(scenario, np.ones(3), 1024, rng=106)
        # Doppler shaping makes neighbouring samples strongly correlated.
        branch = block.envelopes[0]
        neighbour_correlation = np.corrcoef(branch[:-1], branch[1:])[0, 1]
        assert neighbour_correlation > 0.9
