"""Integration tests for the real-time algorithm (Fig. 4 scenarios, Section 5)."""

import numpy as np
import pytest

from repro.channels import clarke_autocorrelation
from repro.core import RealTimeRayleighGenerator
from repro.experiments import paper_values as pv
from repro.signal import envelope_db_around_rms, normalized_autocorrelation
from repro.validation import validate_block


@pytest.fixture(scope="module")
def fig4a_block():
    spec = pv.paper_ofdm_scenario().covariance_spec(np.ones(3))
    generator = RealTimeRayleighGenerator(
        spec,
        normalized_doppler=pv.NORMALIZED_DOPPLER,
        n_points=pv.IDFT_POINTS,
        input_variance_per_dim=pv.INPUT_VARIANCE_PER_DIM,
        rng=2005,
    )
    return spec, generator, generator.generate_gaussian(6)


@pytest.fixture(scope="module")
def fig4b_block():
    spec = pv.paper_mimo_scenario().covariance_spec(np.ones(3))
    generator = RealTimeRayleighGenerator(
        spec,
        normalized_doppler=pv.NORMALIZED_DOPPLER,
        n_points=pv.IDFT_POINTS,
        input_variance_per_dim=pv.INPUT_VARIANCE_PER_DIM,
        rng=2006,
    )
    return spec, generator, generator.generate_gaussian(6)


class TestFig4aStatistics:
    def test_full_validation_report_passes(self, fig4a_block):
        spec, _, block = fig4a_block
        report = validate_block(
            block,
            spec.matrix,
            covariance_tolerance=0.1,
            normalized_doppler=pv.NORMALIZED_DOPPLER,
        )
        assert report.passed, report.render()

    def test_db_traces_show_deep_fades(self, fig4a_block):
        _, _, block = fig4a_block
        db = envelope_db_around_rms(np.abs(block.samples[:, : pv.PLOTTED_SAMPLES]))
        assert np.min(db) < -10.0  # Fig. 4(a) shows fades beyond -10 dB
        assert np.max(db) < 10.0  # and peaks below +10 dB

    def test_branch_autocorrelation_matches_clarke(self, fig4a_block):
        _, generator, block = fig4a_block
        acf = np.real(
            normalized_autocorrelation(block.samples[1][: pv.IDFT_POINTS], max_lag=80)
        )
        reference = clarke_autocorrelation(np.arange(81), generator.normalized_doppler)
        assert np.sqrt(np.mean((acf - reference) ** 2)) < 0.12

    def test_achieved_cross_correlation_structure(self, fig4a_block):
        spec, _, block = fig4a_block
        achieved = block.samples @ block.samples.conj().T / block.samples.shape[1]
        # Ordering of correlation magnitudes matches Eq. (22):
        # |K12| > |K23| > |K13|.
        assert abs(achieved[0, 1]) > abs(achieved[1, 2]) > abs(achieved[0, 2])


class TestFig4bStatistics:
    def test_full_validation_report_passes(self, fig4b_block):
        spec, _, block = fig4b_block
        report = validate_block(
            block,
            spec.matrix,
            covariance_tolerance=0.1,
            normalized_doppler=pv.NORMALIZED_DOPPLER,
        )
        assert report.passed, report.render()

    def test_covariance_is_essentially_real(self, fig4b_block):
        _, _, block = fig4b_block
        achieved = block.samples @ block.samples.conj().T / block.samples.shape[1]
        assert np.max(np.abs(np.imag(achieved))) < 0.05

    def test_adjacent_branch_envelopes_fade_together(self, fig4b_block):
        _, _, block = fig4b_block
        envelopes = np.abs(block.samples)
        rho_adjacent = np.corrcoef(envelopes[0], envelopes[1])[0, 1]
        rho_outer = np.corrcoef(envelopes[0], envelopes[2])[0, 1]
        assert rho_adjacent > rho_outer > 0


class TestVarianceCompensationEffect:
    def test_uncompensated_generation_reproduces_baseline_defect(self):
        spec = pv.paper_ofdm_scenario().covariance_spec(np.ones(3))
        compensated = RealTimeRayleighGenerator(
            spec, normalized_doppler=0.05, n_points=4096, rng=1
        ).generate(4)
        uncompensated = RealTimeRayleighGenerator(
            spec, normalized_doppler=0.05, n_points=4096, rng=1, compensate_variance=False
        ).generate(4)
        power_ok = np.mean(np.abs(compensated) ** 2)
        power_bad = np.mean(np.abs(uncompensated) ** 2)
        assert power_ok == pytest.approx(1.0, rel=0.1)
        assert power_bad < 1e-3  # collapses to the filter output variance
