"""Shared fixtures for the repro test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.covariance import CovarianceSpec
from repro.experiments import paper_values as pv


@pytest.fixture(scope="session")
def eq22_covariance() -> np.ndarray:
    """The paper's Eq. (22) covariance matrix (spectral correlation)."""
    return pv.EQ22_COVARIANCE.copy()


@pytest.fixture(scope="session")
def eq23_covariance() -> np.ndarray:
    """The paper's Eq. (23) covariance matrix (spatial correlation)."""
    return pv.EQ23_COVARIANCE.copy()


@pytest.fixture(scope="session")
def eq22_spec(eq22_covariance) -> CovarianceSpec:
    """Covariance spec built from Eq. (22)."""
    return CovarianceSpec.from_covariance_matrix(eq22_covariance)


@pytest.fixture(scope="session")
def eq23_spec(eq23_covariance) -> CovarianceSpec:
    """Covariance spec built from Eq. (23)."""
    return CovarianceSpec.from_covariance_matrix(eq23_covariance)


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic generator for each test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def indefinite_covariance() -> np.ndarray:
    """A small Hermitian covariance request that is NOT positive semi-definite."""
    matrix = np.array(
        [
            [1.0, 0.9, 0.1],
            [0.9, 1.0, 0.9],
            [0.1, 0.9, 1.0],
        ],
        dtype=complex,
    )
    eigenvalues = np.linalg.eigvalsh(matrix)
    assert np.min(eigenvalues) < 0  # construction sanity check
    return matrix


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: statistically heavy tests (large sample counts)")
