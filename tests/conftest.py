"""Shared fixtures for the repro test-suite.

Besides the paper's reference covariances, this hosts the deterministic
fault-injection harness of the serving-layer test pass: ``FlakyBackend``
fails the Nth ``eigh`` call and ``FlakyStore`` fails the Nth disk
``lookup``/``put``, so tests can prove that a mid-compile fault fails only
the affected request — never the service loop — at an exactly chosen
point.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.covariance import CovarianceSpec
from repro.engine.backends import NumpyBackend
from repro.engine.store import ArtifactStore
from repro.experiments import paper_values as pv


class InjectedFault(RuntimeError):
    """The deterministic error the flaky fixtures raise."""


class FlakyBackend(NumpyBackend):
    """A numpy backend whose Nth ``eigh`` call fails deterministically.

    ``fail_at`` is 1-based; ``fail_at=2`` serves the first decomposition
    and fails the second.  Counting is thread-safe (compiles run on the
    simulator's pool threads).  The backend advertises its own name and a
    non-zero tolerance so it never shares cache namespaces with the real
    numpy backend.
    """

    name = "flaky-numpy"
    tolerance = 1e-300  # non-zero: never cache-aliased with numpy

    def __init__(self, fail_at: int = 1) -> None:
        self._fail_at = int(fail_at)
        self._calls = 0
        self._count_lock = threading.Lock()

    @property
    def eigh_calls(self) -> int:
        with self._count_lock:
            return self._calls

    def eigh(self, stack):
        with self._count_lock:
            self._calls += 1
            calls = self._calls
        if calls == self._fail_at:
            raise InjectedFault(f"injected backend fault at eigh call {calls}")
        return super().eigh(stack)


class FlakyStore(ArtifactStore):
    """An artifact store whose Nth ``lookup`` or ``put`` fails.

    ``operation`` selects which call site is instrumented; the chosen
    call raises :class:`InjectedFault` the ``fail_at``-th time it runs
    (1-based) and behaves normally otherwise.
    """

    def __init__(self, *args, fail_at: int = 1, operation: str = "lookup", **kwargs):
        if operation not in ("lookup", "put"):
            raise ValueError(f"operation must be 'lookup' or 'put', got {operation!r}")
        super().__init__(*args, **kwargs)
        self._fail_at = int(fail_at)
        self._operation = operation
        self._flaky_calls = 0
        self._flaky_lock = threading.Lock()

    def _trip(self, operation: str) -> None:
        if operation != self._operation:
            return
        with self._flaky_lock:
            self._flaky_calls += 1
            calls = self._flaky_calls
        if calls == self._fail_at:
            raise InjectedFault(
                f"injected store fault at {operation} call {calls}"
            )

    def lookup(self, key):
        self._trip("lookup")
        return super().lookup(key)

    def put(self, key, payload):
        self._trip("put")
        return super().put(key, payload)


@pytest.fixture()
def flaky_backend():
    """Factory for :class:`FlakyBackend` instances (``fail_at`` 1-based)."""

    def _make(fail_at: int = 1) -> FlakyBackend:
        return FlakyBackend(fail_at=fail_at)

    return _make


@pytest.fixture()
def flaky_plan_cache(tmp_path):
    """Factory for a disk-attached ``CompiledPlanCache`` with a flaky store.

    The returned cache is fully functional (memory + disk tiers) except
    that the Nth disk ``lookup``/``put`` raises :class:`InjectedFault` —
    the deterministic stand-in for a failing filesystem under the plan
    tier.
    """
    from repro.engine.plancache import CompiledPlanCache

    def _make(fail_at: int = 1, operation: str = "lookup") -> CompiledPlanCache:
        cache = CompiledPlanCache(cache_dir=tmp_path / "flaky-cache")
        real_store = cache.artifact_store
        cache._store = FlakyStore(
            real_store.namespace,
            dump=real_store._dump,
            load=real_store._load,
            cache_dir=tmp_path / "flaky-cache",
            format_version=real_store._format_version,
            fail_at=fail_at,
            operation=operation,
        )
        return cache

    return _make


@pytest.fixture(scope="session")
def eq22_covariance() -> np.ndarray:
    """The paper's Eq. (22) covariance matrix (spectral correlation)."""
    return pv.EQ22_COVARIANCE.copy()


@pytest.fixture(scope="session")
def eq23_covariance() -> np.ndarray:
    """The paper's Eq. (23) covariance matrix (spatial correlation)."""
    return pv.EQ23_COVARIANCE.copy()


@pytest.fixture(scope="session")
def eq22_spec(eq22_covariance) -> CovarianceSpec:
    """Covariance spec built from Eq. (22)."""
    return CovarianceSpec.from_covariance_matrix(eq22_covariance)


@pytest.fixture(scope="session")
def eq23_spec(eq23_covariance) -> CovarianceSpec:
    """Covariance spec built from Eq. (23)."""
    return CovarianceSpec.from_covariance_matrix(eq23_covariance)


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic generator for each test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def indefinite_covariance() -> np.ndarray:
    """A small Hermitian covariance request that is NOT positive semi-definite."""
    matrix = np.array(
        [
            [1.0, 0.9, 0.1],
            [0.9, 1.0, 0.9],
            [0.1, 0.9, 1.0],
        ],
        dtype=complex,
    )
    eigenvalues = np.linalg.eigvalsh(matrix)
    assert np.min(eigenvalues) < 0  # construction sanity check
    return matrix


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: statistically heavy tests (large sample counts)")
