"""Unit tests of the serving wire protocol (:mod:`repro.service.protocol`).

The protocol's whole promise is bit-exactness: a plan that crosses the wire
must hash to the same compiled-plan key and generate the same samples as the
in-process original, and a result that crosses the wire must decode to
arrays bit-identical to the in-process ``BatchResult``.  Every round-trip
test here asserts exact equality, never closeness.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import Simulator
from repro.engine import DopplerSpec, SimulationPlan
from repro.engine.cache import DecompositionCache
from repro.engine.plancache import compiled_plan_cache_key
from repro.exceptions import SpecificationError
from repro.service import (
    PROTOCOL_VERSION,
    decode_array,
    encode_array,
    plan_from_payload,
    plan_to_payload,
    result_from_lines,
    result_to_lines,
)

BASE = np.array(
    [
        [1.0, 0.37 - 0.21j, 0.05],
        [0.37 + 0.21j, 1.8, 0.4j],
        [0.05, -0.4j, 1.2],
    ],
    dtype=complex,
)


def _rich_plan():
    """A plan exercising every serialized field: Doppler, labels, repairs."""
    plan = SimulationPlan()
    plan.add(BASE, seed=101, label="plain")
    plan.add(
        2.5 * BASE,
        seed=202,
        coloring_method="cholesky",
        epsilon=1e-8,
        sample_variance=0.75,
        label="scaled",
    )
    plan.add(
        BASE,
        seed=303,
        doppler=DopplerSpec(normalized_doppler=0.05, n_points=2048),
        label="doppler",
    )
    return plan


class TestArrayCodec:
    def test_complex_round_trip_is_bit_exact(self, rng):
        array = rng.standard_normal((4, 33)) + 1j * rng.standard_normal((4, 33))
        decoded = decode_array(encode_array(array))
        assert decoded.dtype == array.dtype
        assert np.array_equal(decoded, array)

    def test_non_contiguous_input_round_trips(self, rng):
        array = rng.standard_normal((8, 8)).T[::2]  # strided view
        decoded = decode_array(encode_array(array))
        assert np.array_equal(decoded, array)


class TestPlanPayload:
    def test_round_trip_preserves_every_field(self):
        plan = _rich_plan()
        payload = plan_to_payload(plan, 128, client_id="c1")
        # The payload must survive an actual JSON text round-trip.
        payload = json.loads(json.dumps(payload))
        decoded, n_samples = plan_from_payload(payload)
        assert n_samples == 128
        assert payload["client_id"] == "c1"
        assert decoded.n_entries == plan.n_entries
        for got, want in zip(decoded, plan):
            assert np.array_equal(got.spec.matrix, want.spec.matrix)
            assert got.seed == want.seed
            assert got.coloring_method == want.coloring_method
            assert got.psd_method == want.psd_method
            assert got.epsilon == want.epsilon
            assert got.sample_variance == want.sample_variance
            assert got.label == want.label
            if want.doppler is None:
                assert got.doppler is None
            else:
                assert got.doppler.normalized_doppler == want.doppler.normalized_doppler
                assert got.doppler.n_points == want.doppler.n_points

    def test_round_trip_preserves_compiled_plan_hash(self):
        """The decoded plan hashes to the same compiled-plan cache key."""
        plan = _rich_plan()
        payload = json.loads(json.dumps(plan_to_payload(plan, 64)))
        decoded, _ = plan_from_payload(payload)
        assert compiled_plan_cache_key(decoded) == compiled_plan_cache_key(plan)

    def test_round_trip_generates_identical_samples(self):
        plan = _rich_plan()
        payload = json.loads(json.dumps(plan_to_payload(plan, 64)))
        decoded, n_samples = plan_from_payload(payload)
        sim_a = Simulator(cache=DecompositionCache())
        sim_b = Simulator(cache=DecompositionCache())
        try:
            direct = sim_a.run(plan, n_samples)
            wired = sim_b.run(decoded, n_samples)
        finally:
            sim_a.close()
            sim_b.close()
        for got, want in zip(wired.blocks, direct.blocks):
            assert np.array_equal(got.samples, want.samples)

    def test_rejects_bad_version(self):
        payload = plan_to_payload(_rich_plan(), 64)
        payload["version"] = 99
        with pytest.raises(SpecificationError, match="version"):
            plan_from_payload(payload)

    def test_rejects_non_dict_and_missing_fields(self):
        with pytest.raises(SpecificationError, match="JSON object"):
            plan_from_payload([1, 2, 3])
        with pytest.raises(SpecificationError, match="version"):
            plan_from_payload({})
        with pytest.raises(SpecificationError, match="malformed"):
            plan_from_payload({"version": PROTOCOL_VERSION})
        with pytest.raises(SpecificationError, match="non-empty"):
            plan_from_payload(
                {"version": PROTOCOL_VERSION, "n_samples": 8, "entries": []}
            )

    def test_rejects_malformed_entry_with_index(self):
        payload = plan_to_payload(_rich_plan(), 64)
        del payload["entries"][1]["matrix"]
        with pytest.raises(SpecificationError, match="index 1"):
            plan_from_payload(payload)


class TestResultStream:
    def _result(self):
        plan = _rich_plan()
        sim = Simulator(cache=DecompositionCache())
        try:
            return sim.run(plan, 48)
        finally:
            sim.close()

    def test_round_trip_is_bit_identical(self):
        result = self._result()
        lines = list(result_to_lines(result))
        decoded = result_from_lines(iter(lines))
        assert decoded["header"]["n_entries"] == len(result.blocks)
        assert decoded["header"]["backend"] == result.backend
        assert decoded["header"]["compile_report"]["n_entries"] == 3
        assert decoded["labels"] == ["plain", "scaled", "doppler"]
        assert len(decoded["blocks"]) == len(result.blocks)
        for got, want in zip(decoded["blocks"], result.blocks):
            assert np.array_equal(got, want.samples)

    def test_truncated_stream_rejected(self):
        lines = list(result_to_lines(self._result()))
        with pytest.raises(SpecificationError, match="truncated"):
            result_from_lines(iter(lines[:-1]))  # no terminator
        with pytest.raises(SpecificationError, match="truncated"):
            result_from_lines(iter([lines[0], lines[-1]]))  # blocks missing

    def test_out_of_order_and_unknown_records_rejected(self):
        lines = list(result_to_lines(self._result()))
        with pytest.raises(SpecificationError, match="block before header"):
            result_from_lines(iter(lines[1:]))
        with pytest.raises(SpecificationError, match="unknown record"):
            result_from_lines(iter([json.dumps({"type": "surprise"})]))
        with pytest.raises(SpecificationError, match="malformed result line"):
            result_from_lines(iter(["{not json"]))


class TestFadingOnTheWire:
    """Fading specs must cross the wire bit-exactly (invariant 6).

    Anything lossy here is silently catastrophic: a spec that decodes to a
    different float would hash to a different compiled-plan key (cache
    misses), or — worse — to the *same* key as a genuinely different spec
    (coalescing two requests whose results differ).
    """

    def _faded_plan(self):
        plan = SimulationPlan()
        plan.add(BASE, seed=11, fading={"model": "rician", "shape": 4.0})
        # A shortest-repr-hostile shape: 0.1 has no exact binary expansion.
        plan.add(BASE, seed=12, fading={"model": "nakagami", "shape": 0.6 + 0.1})
        plan.add(
            BASE,
            seed=13,
            doppler=DopplerSpec(normalized_doppler=0.05, n_points=64),
            fading={"model": "weibull", "shape": 1.7, "shadowing_sigma_db": 5.5},
        )
        plan.add(BASE, seed=14)  # fading=None round-trips as null
        return plan

    def test_round_trip_preserves_fading_specs(self):
        plan = self._faded_plan()
        payload = json.loads(json.dumps(plan_to_payload(plan, 32)))
        decoded, _ = plan_from_payload(payload)
        for got, want in zip(decoded, plan):
            assert got.fading == want.fading  # dataclass equality: exact floats

    def test_round_trip_preserves_compiled_plan_hash(self):
        plan = self._faded_plan()
        payload = json.loads(json.dumps(plan_to_payload(plan, 32)))
        decoded, _ = plan_from_payload(payload)
        assert compiled_plan_cache_key(decoded) == compiled_plan_cache_key(plan)

    def test_round_trip_generates_identical_samples(self):
        plan = self._faded_plan()
        payload = json.loads(json.dumps(plan_to_payload(plan, 48)))
        decoded, n_samples = plan_from_payload(payload)
        sim_a = Simulator(cache=DecompositionCache())
        sim_b = Simulator(cache=DecompositionCache())
        try:
            direct = sim_a.run(plan, n_samples)
            wired = sim_b.run(decoded, n_samples)
        finally:
            sim_a.close()
            sim_b.close()
        for got, want in zip(wired.blocks, direct.blocks):
            assert np.array_equal(got.samples, want.samples)

    def test_malformed_fading_names_field_and_entry(self):
        payload = plan_to_payload(self._faded_plan(), 32)
        payload["entries"][1]["fading"] = {"model": "nakagami"}  # missing shape
        with pytest.raises(SpecificationError, match="fading.shape"):
            plan_from_payload(payload)
        payload["entries"][1]["fading"] = {"model": "rice", "shape": 2.0}
        with pytest.raises(SpecificationError, match="fading.model"):
            plan_from_payload(payload)

    def test_same_plan_different_models_never_coalesce(self):
        """The service request key must split on every fading difference."""
        from repro.service import request_key

        def key(fading):
            plan = SimulationPlan()
            plan.add(BASE, seed=21, fading=fading)
            return request_key(plan, 64)

        keys = {
            key(None),
            key({"model": "rician", "shape": 2.0}),
            key({"model": "rician", "shape": 3.0}),
            key({"model": "nakagami", "shape": 2.0}),
            key({"model": "weibull", "shape": 2.0}),
            key({"model": "rayleigh", "shadowing_sigma_db": 4.0}),
        }
        assert None not in keys  # integer seeds: all requests are keyable
        assert len(keys) == 6

    def test_identical_faded_requests_still_coalesce(self):
        from repro.service import request_key

        def key():
            plan = SimulationPlan()
            plan.add(BASE, seed=21, fading={"model": "rician", "shape": 2.0})
            return request_key(plan, 64)

        assert key() == key()
