"""Unit tests for repro.linalg.cholesky."""

import numpy as np
import pytest

from repro.exceptions import CholeskyError
from repro.linalg import cholesky_factor, try_cholesky


class TestCholeskyFactor:
    def test_factor_reconstructs_matrix(self, eq22_covariance):
        factor = cholesky_factor(eq22_covariance)
        assert np.allclose(factor @ factor.conj().T, eq22_covariance, atol=1e-12)

    def test_factor_is_lower_triangular(self, eq22_covariance):
        factor = cholesky_factor(eq22_covariance)
        assert np.allclose(np.triu(factor, k=1), 0.0)

    def test_indefinite_raises_cholesky_error(self, indefinite_covariance):
        with pytest.raises(CholeskyError):
            cholesky_factor(indefinite_covariance)

    def test_exactly_singular_raises(self):
        with pytest.raises(CholeskyError):
            cholesky_factor(np.ones((4, 4)))

    def test_error_message_mentions_eigen_alternative(self, indefinite_covariance):
        with pytest.raises(CholeskyError, match="eigendecomposition"):
            cholesky_factor(indefinite_covariance)


class TestTryCholesky:
    def test_success_on_pd_matrix(self, eq23_covariance):
        result = try_cholesky(eq23_covariance)
        assert result.success
        assert result.jitter_used == 0.0
        assert np.allclose(
            result.factor @ result.factor.conj().T, eq23_covariance, atol=1e-12
        )

    def test_failure_without_jitter(self, indefinite_covariance):
        result = try_cholesky(indefinite_covariance)
        assert not result.success
        assert result.factor is None
        assert result.jitter_used is None

    def test_jitter_cannot_fix_genuinely_indefinite(self, indefinite_covariance):
        # The smallest eigenvalue is about -0.22; the tiny jitter ladder cannot
        # reach it, so the factorization still fails.
        result = try_cholesky(indefinite_covariance, allow_jitter=True)
        assert not result.success

    def test_jitter_fixes_marginally_singular(self):
        matrix = np.ones((3, 3)) + 1e-14 * np.eye(3)
        result = try_cholesky(matrix, allow_jitter=True)
        # Either the plain call succeeds (rounding) or the jitter repairs it.
        assert result.success

    def test_message_is_informative(self, indefinite_covariance):
        result = try_cholesky(indefinite_covariance)
        assert "failed" in result.message
