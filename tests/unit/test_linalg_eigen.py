"""Unit tests for repro.linalg.eigen."""

import numpy as np
import pytest

from repro.linalg import EigenDecomposition, hermitian_eigendecomposition, reconstruct_from_eigen


class TestHermitianEigendecomposition:
    def test_eigenvalues_descending(self, eq22_covariance):
        decomp = hermitian_eigendecomposition(eq22_covariance)
        assert np.all(np.diff(decomp.eigenvalues) <= 0)

    def test_reconstruction_matches_input(self, eq22_covariance):
        decomp = hermitian_eigendecomposition(eq22_covariance)
        assert np.allclose(decomp.reconstruct(), eq22_covariance, atol=1e-12)

    def test_eigenvalues_are_real(self, eq22_covariance):
        decomp = hermitian_eigendecomposition(eq22_covariance)
        assert not np.iscomplexobj(decomp.eigenvalues)

    def test_eigenvectors_orthonormal(self, eq23_covariance):
        decomp = hermitian_eigendecomposition(eq23_covariance)
        gram = decomp.eigenvectors.conj().T @ decomp.eigenvectors
        assert np.allclose(gram, np.eye(3), atol=1e-12)

    def test_identity_eigenvalues(self):
        decomp = hermitian_eigendecomposition(np.eye(4) * 3.0)
        assert np.allclose(decomp.eigenvalues, 3.0)

    def test_min_max_properties(self, indefinite_covariance):
        decomp = hermitian_eigendecomposition(indefinite_covariance)
        eigs = np.linalg.eigvalsh(indefinite_covariance)
        assert decomp.min_eigenvalue == pytest.approx(np.min(eigs))
        assert decomp.max_eigenvalue == pytest.approx(np.max(eigs))

    def test_negative_count(self, indefinite_covariance):
        decomp = hermitian_eigendecomposition(indefinite_covariance)
        assert decomp.negative_count() == 1

    def test_negative_count_zero_for_psd(self, eq23_covariance):
        assert hermitian_eigendecomposition(eq23_covariance).negative_count() == 0

    def test_numerical_rank_full(self, eq22_covariance):
        assert hermitian_eigendecomposition(eq22_covariance).numerical_rank() == 3

    def test_numerical_rank_deficient(self):
        assert hermitian_eigendecomposition(np.ones((4, 4))).numerical_rank() == 1

    def test_size_property(self, eq22_covariance):
        assert hermitian_eigendecomposition(eq22_covariance).size == 3

    def test_nearly_hermitian_input_symmetrized(self):
        matrix = np.array([[1.0, 0.5 + 1e-14], [0.5, 1.0]])
        decomp = hermitian_eigendecomposition(matrix)
        assert isinstance(decomp, EigenDecomposition)


class TestReconstructFromEigen:
    def test_identity_reconstruction(self):
        values = np.array([2.0, 1.0])
        vectors = np.eye(2)
        assert np.allclose(reconstruct_from_eigen(values, vectors), np.diag(values))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            reconstruct_from_eigen(np.ones(3), np.eye(2))

    def test_complex_reconstruction_is_hermitian(self, eq22_covariance):
        decomp = hermitian_eigendecomposition(eq22_covariance)
        rebuilt = reconstruct_from_eigen(decomp.eigenvalues, decomp.eigenvectors)
        assert np.allclose(rebuilt, rebuilt.conj().T)
