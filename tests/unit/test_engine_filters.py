"""Unit tests for the process-wide + on-disk Young–Beaulieu filter cache."""

import numpy as np
import pytest

from repro.channels.doppler import filter_output_variance, young_beaulieu_filter
from repro.core.realtime import RealTimeRayleighGenerator
from repro.engine import (
    DecompositionCache,
    DopplerFilterCache,
    DopplerSpec,
    SimulationPlan,
    compile_plan,
    default_filter_cache,
)


@pytest.fixture()
def matrix():
    return np.array([[1.0, 0.4], [0.4, 1.0]], dtype=complex)


class TestDopplerFilterCache:
    def test_miss_builds_bit_identical_filter(self):
        cache = DopplerFilterCache()
        coefficients, variance, was_cached = cache.get(64, 0.05)
        assert not was_cached
        fresh = young_beaulieu_filter(64, 0.05)
        assert np.array_equal(coefficients, fresh)
        assert variance == filter_output_variance(fresh, 0.5)

    def test_hit_shares_the_same_array(self):
        cache = DopplerFilterCache()
        first, _, _ = cache.get(64, 0.05)
        second, _, was_cached = cache.get(64, 0.05)
        assert was_cached
        assert second is first

    def test_cached_coefficients_are_frozen(self):
        coefficients, _, _ = DopplerFilterCache().get(64, 0.05)
        assert not coefficients.flags.writeable
        with pytest.raises(ValueError):
            coefficients[0] = 1.0

    def test_distinct_keys_build_distinct_filters(self):
        cache = DopplerFilterCache()
        cache.get(64, 0.05)
        cache.get(64, 0.1)
        cache.get(128, 0.05)
        cache.get(64, 0.05, input_variance_per_dim=1.0)  # same filter, new variance
        stats = cache.stats
        assert stats.misses == 4
        assert len(cache) == 4

    def test_counters(self):
        cache = DopplerFilterCache()
        cache.get(64, 0.05)
        cache.get(64, 0.05)
        stats = cache.stats
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.lookups == 2
        assert stats.builds == 1

    def test_invalid_parameters_still_raise(self):
        from repro.exceptions import DopplerError

        with pytest.raises(DopplerError):
            DopplerFilterCache().get(64, 0.9)

    def test_clear_and_reset(self):
        cache = DopplerFilterCache()
        cache.get(64, 0.05)
        cache.clear()
        assert len(cache) == 0
        cache.reset_stats()
        assert cache.stats.lookups == 0

    def test_default_cache_is_process_wide(self):
        assert default_filter_cache() is default_filter_cache()


class TestFilterDiskTier:
    def test_fresh_process_equivalent_hits_disk(self, tmp_path):
        built, variance, _ = DopplerFilterCache(cache_dir=tmp_path).get(64, 0.05)
        second = DopplerFilterCache(cache_dir=tmp_path)
        loaded, loaded_variance, was_cached = second.get(64, 0.05)
        assert was_cached
        assert second.stats.disk_hits == 1
        assert loaded.tobytes() == built.tobytes()
        assert loaded_variance == variance

    def test_disk_usage_and_clear(self, tmp_path):
        cache = DopplerFilterCache(cache_dir=tmp_path)
        cache.get(64, 0.05)
        cache.get(128, 0.05)
        entries, total = cache.disk_usage()
        assert entries == 2
        assert total > 0
        assert cache.clear_disk() == 2
        assert cache.disk_usage() == (0, 0)

    def test_corrupt_entry_is_a_counted_miss(self, tmp_path):
        DopplerFilterCache(cache_dir=tmp_path).get(64, 0.05)
        (path,) = (tmp_path / "filters").glob("*.npz")
        path.write_bytes(b"garbage")
        cache = DopplerFilterCache(cache_dir=tmp_path)
        coefficients, _, was_cached = cache.get(64, 0.05)
        assert not was_cached
        stats = cache.stats
        assert stats.disk_corruptions == 1
        assert stats.disk_misses == 1
        assert np.array_equal(coefficients, young_beaulieu_filter(64, 0.05))

    def test_store_sweeps_stale_tmp_orphans(self, tmp_path):
        import os
        import time

        orphan_dir = tmp_path / "filters"
        orphan_dir.mkdir(parents=True)
        stale = orphan_dir / "deadbeef.tmp"
        stale.write_bytes(b"left by a dead worker")
        os.utime(stale, (time.time() - 7200, time.time() - 7200))
        fresh = orphan_dir / "cafe.tmp"
        fresh.write_bytes(b"in flight")
        DopplerFilterCache(cache_dir=tmp_path).get(64, 0.05)  # triggers a store
        assert not stale.exists()  # hour-old orphan swept
        assert fresh.exists()  # recent file presumed in-flight, kept

    def test_clear_disk_removes_tmp_leftovers(self, tmp_path):
        cache = DopplerFilterCache(cache_dir=tmp_path)
        cache.get(64, 0.05)
        orphan = tmp_path / "filters" / "deadbeef.tmp"
        orphan.write_bytes(b"half-written")
        assert cache.clear_disk() == 1  # counts entries, not tmp leftovers
        assert not orphan.exists()

    def test_unusable_cache_dir_degrades_without_retry(self, tmp_path, monkeypatch):
        from repro.engine.store import ArtifactStore

        blocker = tmp_path / "blocker"
        blocker.write_text("a regular file, not a directory")
        cache = DopplerFilterCache(cache_dir=blocker)
        cache.get(64, 0.05)  # store attempt fails soft
        calls = []
        monkeypatch.setattr(
            ArtifactStore, "_write", lambda self, *a: calls.append(1) or (False, 0)
        )
        for _ in range(5):
            cache.get(64, 0.05)  # memory hits
        assert calls == []  # the failed spill was remembered, not re-paid

    def test_tampered_payload_fails_digest_verification(self, tmp_path):
        import zipfile

        DopplerFilterCache(cache_dir=tmp_path).get(64, 0.05)
        (path,) = (tmp_path / "filters").glob("*.npz")
        with zipfile.ZipFile(path) as archive:
            members = {name: archive.read(name) for name in archive.namelist()}
        payload = bytearray(members["coefficients.npy"])
        payload[-1] ^= 0xFF
        members["coefficients.npy"] = bytes(payload)
        with zipfile.ZipFile(path, "w") as archive:
            for name, data in members.items():
                archive.writestr(name, data)
        cache = DopplerFilterCache(cache_dir=tmp_path)
        coefficients, _, was_cached = cache.get(64, 0.05)
        assert not was_cached
        assert cache.stats.disk_corruptions == 1
        assert np.array_equal(coefficients, young_beaulieu_filter(64, 0.05))


class TestCompileIntegration:
    def _doppler_plan(self, matrix):
        plan = SimulationPlan()
        plan.add(matrix, seed=1, doppler=DopplerSpec(0.05, 64))
        plan.add(2 * matrix, seed=2, doppler=DopplerSpec(0.05, 64))
        return plan

    def test_compile_reports_shared_cache_hits(self, matrix):
        filter_cache = DopplerFilterCache()
        plan = self._doppler_plan(matrix)
        first = compile_plan(
            plan, cache=DecompositionCache(), filter_cache=filter_cache
        )
        second = compile_plan(
            plan, cache=DecompositionCache(), filter_cache=filter_cache
        )
        # Both passes resolve one unique filter key; only the first builds it.
        assert first.report.doppler_filters_built == 1
        assert first.report.doppler_filter_cache_hits == 0
        assert second.report.doppler_filters_built == 1
        assert second.report.doppler_filter_cache_hits == 1
        assert filter_cache.stats.builds == 1

    def test_compiles_share_the_filter_array_across_passes(self, matrix):
        filter_cache = DopplerFilterCache()
        plan = self._doppler_plan(matrix)
        first = compile_plan(
            plan, cache=DecompositionCache(), filter_cache=filter_cache
        )
        second = compile_plan(
            plan, cache=DecompositionCache(), filter_cache=filter_cache
        )
        assert second.groups[0].doppler_filter is first.groups[0].doppler_filter

    def test_snapshot_plan_reports_no_filter_activity(self, matrix):
        plan = SimulationPlan()
        plan.add(matrix, seed=1)
        compiled = compile_plan(
            plan, cache=DecompositionCache(), filter_cache=DopplerFilterCache()
        )
        assert compiled.report.doppler_filters_built == 0
        assert compiled.report.doppler_filter_cache_hits == 0


class TestRealtimeIntegration:
    def test_generators_share_one_build(self, matrix):
        filter_cache = DopplerFilterCache()
        first = RealTimeRayleighGenerator(
            matrix, normalized_doppler=0.05, n_points=64, rng=1,
            cache=DecompositionCache(maxsize=0), filter_cache=filter_cache,
        )
        second = RealTimeRayleighGenerator(
            matrix, normalized_doppler=0.05, n_points=64, rng=2,
            cache=DecompositionCache(maxsize=0), filter_cache=filter_cache,
        )
        assert filter_cache.stats.builds == 1
        assert second._filter is first._filter

    def test_cached_filter_keeps_bit_identity(self, matrix):
        # The shared filter must not change what the generator produces.
        filter_cache = DopplerFilterCache()
        filter_cache.get(64, 0.05)  # pre-warm so the generator gets a hit
        warm = RealTimeRayleighGenerator(
            matrix, normalized_doppler=0.05, n_points=64, rng=7,
            cache=DecompositionCache(maxsize=0), filter_cache=filter_cache,
        ).generate_gaussian(2)
        cold = RealTimeRayleighGenerator(
            matrix, normalized_doppler=0.05, n_points=64, rng=7,
            cache=DecompositionCache(maxsize=0), filter_cache=DopplerFilterCache(),
        ).generate_gaussian(2)
        assert np.array_equal(warm.samples, cold.samples)

    def test_output_variance_matches_eq19(self, matrix):
        generator = RealTimeRayleighGenerator(
            matrix, normalized_doppler=0.05, n_points=64, rng=1,
            cache=DecompositionCache(maxsize=0),
            filter_cache=DopplerFilterCache(),
        )
        expected = filter_output_variance(young_beaulieu_filter(64, 0.05), 0.5)
        assert generator.filter_output_variance == expected
