"""Unit tests for the conventional baseline generators [1]-[6]."""

import numpy as np
import pytest

from repro.baselines import (
    BeaulieuMeraniGenerator,
    ErtelReedGenerator,
    NatarajanGenerator,
    SalzWintersGenerator,
    SorooshyariDautGenerator,
)
from repro.baselines.base import require_equal_powers
from repro.exceptions import (
    CholeskyError,
    GenerationError,
    NotPositiveSemiDefiniteError,
    PowerError,
    SpecificationError,
)


@pytest.fixture()
def unequal_power_covariance():
    powers = np.array([0.5, 1.0, 2.0])
    rho = 0.6
    base = rho ** np.abs(np.subtract.outer(range(3), range(3)))
    return (base * np.sqrt(np.outer(powers, powers))).astype(complex)


class TestRequireEqualPowers:
    def test_accepts_equal(self):
        assert require_equal_powers(np.array([2.0, 2.0]), "test") == 2.0

    def test_rejects_unequal(self):
        with pytest.raises(PowerError, match="equal-power"):
            require_equal_powers(np.array([1.0, 2.0]), "test")

    def test_rejects_non_positive(self):
        with pytest.raises(PowerError):
            require_equal_powers(np.array([1.0, 0.0]), "test")


class TestSalzWinters:
    def test_achieves_equal_power_covariance(self, eq22_covariance):
        generator = SalzWintersGenerator(eq22_covariance, rng=0)
        samples = generator.generate(200_000)
        achieved = samples @ samples.conj().T / samples.shape[1]
        assert np.max(np.abs(achieved - eq22_covariance)) < 0.03

    def test_rejects_unequal_power(self, unequal_power_covariance):
        with pytest.raises(PowerError):
            SalzWintersGenerator(unequal_power_covariance, rng=0)

    def test_fails_on_non_psd(self, indefinite_covariance):
        with pytest.raises(NotPositiveSemiDefiniteError) as excinfo:
            SalzWintersGenerator(indefinite_covariance, rng=0)
        assert excinfo.value.min_eigenvalue < 0

    def test_real_covariance_is_2n_by_2n(self, eq22_covariance):
        generator = SalzWintersGenerator(eq22_covariance, rng=0)
        assert generator.real_covariance.shape == (6, 6)

    def test_output_shape(self, eq23_covariance):
        generator = SalzWintersGenerator(eq23_covariance, rng=1)
        assert generator.generate(16).shape == (3, 16)

    def test_invalid_sample_count(self, eq23_covariance):
        with pytest.raises(GenerationError):
            SalzWintersGenerator(eq23_covariance, rng=0).generate(0)


class TestErtelReed:
    def test_exactly_two_branches(self):
        generator = ErtelReedGenerator(envelope_correlation=0.5, rng=0)
        assert generator.n_branches == 2
        assert generator.generate(8).shape == (2, 8)

    def test_envelope_correlation_to_gaussian_correlation(self):
        generator = ErtelReedGenerator(envelope_correlation=0.49, rng=0)
        assert abs(generator.gaussian_correlation) == pytest.approx(0.7)

    def test_achieved_gaussian_correlation_matches_covariance_matrix(self):
        # E{z1 conj(z2)} must equal the off-diagonal of covariance_matrix().
        rho = 0.6 + 0.2j
        generator = ErtelReedGenerator(gaussian_correlation=rho, power=1.0, rng=1)
        samples = generator.generate(300_000)
        achieved = np.mean(samples[0] * np.conj(samples[1]))
        assert abs(achieved - generator.covariance_matrix()[0, 1]) < 0.02

    def test_achieved_envelope_correlation(self):
        generator = ErtelReedGenerator(envelope_correlation=0.49, rng=2)
        envelopes = np.abs(generator.generate(400_000))
        corr = np.corrcoef(envelopes[0], envelopes[1])[0, 1]
        assert corr == pytest.approx(0.49, abs=0.03)

    def test_branch_powers_equal(self):
        generator = ErtelReedGenerator(envelope_correlation=0.3, power=2.0, rng=3)
        samples = generator.generate(200_000)
        powers = np.mean(np.abs(samples) ** 2, axis=1)
        assert np.allclose(powers, 2.0, rtol=0.03)

    def test_covariance_matrix_helper(self):
        generator = ErtelReedGenerator(gaussian_correlation=0.5j, power=3.0, rng=0)
        matrix = generator.covariance_matrix()
        assert matrix[0, 1] == pytest.approx(1.5j)
        assert np.allclose(matrix, matrix.conj().T)

    def test_requires_some_correlation_argument(self):
        with pytest.raises(SpecificationError):
            ErtelReedGenerator(rng=0)

    def test_rejects_correlation_of_one_or_more(self):
        with pytest.raises(SpecificationError):
            ErtelReedGenerator(envelope_correlation=1.0, rng=0)
        with pytest.raises(SpecificationError):
            ErtelReedGenerator(gaussian_correlation=1.2, rng=0)

    def test_rejects_invalid_power(self):
        with pytest.raises(SpecificationError):
            ErtelReedGenerator(envelope_correlation=0.5, power=0.0, rng=0)


class TestBeaulieuMerani:
    def test_achieves_covariance_for_pd_equal_power(self, eq22_covariance):
        generator = BeaulieuMeraniGenerator(eq22_covariance, rng=0)
        samples = generator.generate(200_000)
        achieved = samples @ samples.conj().T / samples.shape[1]
        assert np.max(np.abs(achieved - eq22_covariance)) < 0.03

    def test_rejects_unequal_power(self, unequal_power_covariance):
        with pytest.raises(PowerError):
            BeaulieuMeraniGenerator(unequal_power_covariance, rng=0)

    def test_fails_on_indefinite_covariance(self, indefinite_covariance):
        with pytest.raises(CholeskyError):
            BeaulieuMeraniGenerator(indefinite_covariance, rng=0)

    def test_fails_on_singular_covariance(self):
        with pytest.raises(CholeskyError):
            BeaulieuMeraniGenerator(np.ones((3, 3), dtype=complex), rng=0)

    def test_coloring_matrix_is_triangular(self, eq23_covariance):
        generator = BeaulieuMeraniGenerator(eq23_covariance, rng=0)
        assert np.allclose(np.triu(generator.coloring_matrix, k=1), 0.0)


class TestNatarajan:
    def test_supports_unequal_power(self, unequal_power_covariance):
        generator = NatarajanGenerator(unequal_power_covariance, rng=0)
        samples = generator.generate(200_000)
        powers = np.mean(np.abs(samples) ** 2, axis=1)
        assert np.allclose(powers, [0.5, 1.0, 2.0], rtol=0.05)

    def test_discards_imaginary_covariance_parts(self, eq22_covariance):
        generator = NatarajanGenerator(eq22_covariance, rng=1)
        samples = generator.generate(300_000)
        achieved = samples @ samples.conj().T / samples.shape[1]
        # The achieved covariance matches the real part of the request, not the
        # request itself - the documented limitation.
        assert np.max(np.abs(achieved - np.real(eq22_covariance))) < 0.03
        assert np.max(np.abs(achieved - eq22_covariance)) > 0.3

    def test_covariance_distortion_metric(self, eq22_covariance):
        generator = NatarajanGenerator(eq22_covariance, rng=0)
        assert generator.covariance_distortion() > 0.5

    def test_fails_on_indefinite(self, indefinite_covariance):
        with pytest.raises(CholeskyError):
            NatarajanGenerator(indefinite_covariance, rng=0)


class TestSorooshyariDaut:
    def test_snapshot_mode_achieves_pd_covariance(self, eq22_covariance):
        generator = SorooshyariDautGenerator(eq22_covariance, rng=0)
        samples = generator.generate(200_000)
        achieved = samples @ samples.conj().T / samples.shape[1]
        assert np.max(np.abs(achieved - eq22_covariance)) < 0.03

    def test_epsilon_repair_allows_indefinite_requests(self, indefinite_covariance):
        generator = SorooshyariDautGenerator(indefinite_covariance, epsilon=1e-4, rng=1)
        assert generator.approximation_error > 0
        samples = generator.generate(1000)
        assert samples.shape == (3, 1000)

    def test_rejects_unequal_power(self, unequal_power_covariance):
        with pytest.raises(PowerError):
            SorooshyariDautGenerator(unequal_power_covariance, rng=0)

    def test_realtime_mode_misses_desired_power(self, eq22_covariance):
        generator = SorooshyariDautGenerator(eq22_covariance, rng=2)
        samples = generator.generate_realtime(
            normalized_doppler=0.05, n_points=2048, rng=3
        )
        powers = np.mean(np.abs(samples) ** 2, axis=1)
        # The defect: branch powers collapse to the filter output variance
        # instead of the requested unit power.
        assert np.all(powers < 0.01)

    def test_effective_covariance_copy(self, eq22_covariance):
        generator = SorooshyariDautGenerator(eq22_covariance, rng=0)
        matrix = generator.effective_covariance
        matrix[0, 0] = 99.0
        assert generator.effective_covariance[0, 0] != 99.0

    def test_envelope_block_interface(self, eq22_covariance):
        generator = SorooshyariDautGenerator(eq22_covariance, rng=0)
        block = generator.generate_envelopes(64)
        assert block.envelopes.shape == (3, 64)
        assert block.metadata["reference"] == "[6]"
