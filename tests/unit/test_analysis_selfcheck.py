"""Tier-1 self-check: the committed tree lints clean under every rule.

This is the standing static gate: any PR that introduces an unguarded
read of lock-protected state, an allocating constructor in the fused
execute path, a broken ``*_into`` override, or an impure cache-key
reference fails here — before the (sampled, dynamic) property suites
would ever catch it.  Deliberate exceptions are visible in the diff as
``# reprolint:`` directives (see docs/ARCHITECTURE.md, "Static
guarantees").
"""

from pathlib import Path

import repro
from repro.analysis import all_rules, run_lint

PACKAGE_DIR = Path(repro.__file__).resolve().parent

EXPECTED_RULES = {
    "lock-discipline",
    "hot-path-allocation",
    "backend-into-contract",
    "cache-key-purity",
}


def test_all_four_rule_families_are_registered():
    assert {rule.name for rule in all_rules()} >= EXPECTED_RULES


def test_source_tree_lints_clean():
    report = run_lint([PACKAGE_DIR])
    rendered = "\n".join(finding.format() for finding in report.findings)
    assert report.clean, f"reprolint findings on the committed tree:\n{rendered}"
    assert set(report.rules) >= EXPECTED_RULES
    # The whole package was actually scanned, not an empty directory.
    assert report.files > 50


def test_hot_modules_are_marked():
    """The allocation rule only bites while the hot markers stay present."""
    from repro.analysis.framework import ModuleInfo

    execute = PACKAGE_DIR / "engine" / "execute.py"
    module = ModuleInfo(
        execute, str(execute), execute.read_text(encoding="utf8")
    )
    assert module.hot_module

    idft = PACKAGE_DIR / "channels" / "idft_generator.py"
    module = ModuleInfo(idft, str(idft), idft.read_text(encoding="utf8"))
    assert module.hot_path_lines, "batched_doppler_blocks lost its hot-path marker"

    serving_core = PACKAGE_DIR / "service" / "core.py"
    module = ModuleInfo(
        serving_core, str(serving_core), serving_core.read_text(encoding="utf8")
    )
    assert module.hot_module, "the serving core lost its hot-module marker"


def test_lock_guarded_modules_produce_findings_when_unsuppressed():
    """The store's advisory lock-free read is a *suppressed* finding.

    Guards against the rule silently losing its teeth: stripping the
    suppression directives from ``engine/store.py`` must re-surface the
    documented advisory read in ``ArtifactStore.attached``.
    """
    from repro.analysis.framework import Project
    from repro.analysis.lock_discipline import LockDisciplineRule

    store = PACKAGE_DIR / "engine" / "store.py"
    source = store.read_text(encoding="utf8").replace("# reprolint:", "# stripped:")
    from repro.analysis.framework import ModuleInfo

    module = ModuleInfo(store, str(store), source)
    findings = list(LockDisciplineRule().run(Project(modules=[module])))
    assert any("_dir" in finding.message for finding in findings)
