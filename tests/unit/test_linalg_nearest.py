"""Unit tests for repro.linalg.nearest (PSD approximations)."""

import numpy as np
import pytest

from repro.linalg import (
    clip_negative_eigenvalues,
    frobenius_distance,
    is_positive_semidefinite,
    nearest_psd_higham,
    replace_nonpositive_eigenvalues,
)


class TestFrobeniusDistance:
    def test_zero_for_identical(self, eq22_covariance):
        assert frobenius_distance(eq22_covariance, eq22_covariance) == 0.0

    def test_known_value(self):
        a = np.zeros((2, 2))
        b = np.array([[3.0, 0.0], [0.0, 4.0]])
        assert frobenius_distance(a, b) == pytest.approx(5.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            frobenius_distance(np.eye(2), np.eye(3))


class TestClipNegativeEigenvalues:
    def test_result_is_psd(self, indefinite_covariance):
        clipped = clip_negative_eigenvalues(indefinite_covariance)
        assert is_positive_semidefinite(clipped)

    def test_psd_input_unchanged(self, eq22_covariance):
        clipped = clip_negative_eigenvalues(eq22_covariance)
        assert np.allclose(clipped, eq22_covariance, atol=1e-12)

    def test_result_is_hermitian(self, indefinite_covariance):
        clipped = clip_negative_eigenvalues(indefinite_covariance)
        assert np.allclose(clipped, clipped.conj().T)

    def test_negative_eigenvalues_become_zero(self, indefinite_covariance):
        clipped = clip_negative_eigenvalues(indefinite_covariance)
        eigenvalues = np.linalg.eigvalsh(clipped)
        assert np.min(eigenvalues) >= -1e-12

    def test_positive_eigenvalues_preserved(self, indefinite_covariance):
        original = np.linalg.eigvalsh(indefinite_covariance)
        clipped = np.linalg.eigvalsh(clip_negative_eigenvalues(indefinite_covariance))
        assert np.allclose(sorted(clipped)[1:], sorted(original)[1:], atol=1e-10)

    def test_is_frobenius_projection(self, indefinite_covariance):
        # Clipping must be at least as close as the epsilon replacement for
        # every epsilon (it is the orthogonal projection onto the PSD cone).
        clipped = clip_negative_eigenvalues(indefinite_covariance)
        clip_distance = frobenius_distance(clipped, indefinite_covariance)
        for epsilon in (1e-8, 1e-4, 1e-1):
            replaced = replace_nonpositive_eigenvalues(indefinite_covariance, epsilon)
            assert clip_distance <= frobenius_distance(replaced, indefinite_covariance) + 1e-12

    def test_input_not_mutated(self, indefinite_covariance):
        copy = indefinite_covariance.copy()
        clip_negative_eigenvalues(indefinite_covariance)
        assert np.array_equal(copy, indefinite_covariance)


class TestReplaceNonpositiveEigenvalues:
    def test_result_is_positive_definite(self, indefinite_covariance):
        replaced = replace_nonpositive_eigenvalues(indefinite_covariance, epsilon=1e-6)
        assert np.min(np.linalg.eigvalsh(replaced)) > 0

    def test_zero_eigenvalues_also_replaced(self):
        replaced = replace_nonpositive_eigenvalues(np.ones((3, 3)), epsilon=1e-4)
        assert np.min(np.linalg.eigvalsh(replaced)) == pytest.approx(1e-4, rel=1e-3)

    def test_invalid_epsilon_raises(self, indefinite_covariance):
        with pytest.raises(ValueError):
            replace_nonpositive_eigenvalues(indefinite_covariance, epsilon=0.0)

    def test_larger_epsilon_moves_further(self, indefinite_covariance):
        near = replace_nonpositive_eigenvalues(indefinite_covariance, 1e-8)
        far = replace_nonpositive_eigenvalues(indefinite_covariance, 1e-1)
        assert frobenius_distance(near, indefinite_covariance) < frobenius_distance(
            far, indefinite_covariance
        )


class TestNearestPsdHigham:
    def test_without_diagonal_constraint_equals_clipping(self, indefinite_covariance):
        higham = nearest_psd_higham(indefinite_covariance)
        clipped = clip_negative_eigenvalues(indefinite_covariance)
        assert np.allclose(higham, clipped, atol=1e-12)

    def test_preserve_diagonal(self, indefinite_covariance):
        higham = nearest_psd_higham(indefinite_covariance, preserve_diagonal=True)
        assert np.allclose(np.diag(higham), np.diag(indefinite_covariance), atol=1e-6)

    def test_preserve_diagonal_result_is_psd(self, indefinite_covariance):
        higham = nearest_psd_higham(indefinite_covariance, preserve_diagonal=True)
        assert is_positive_semidefinite(higham, tol=1e-7)

    def test_psd_input_unchanged(self, eq23_covariance):
        higham = nearest_psd_higham(eq23_covariance, preserve_diagonal=True)
        assert np.allclose(higham, eq23_covariance, atol=1e-8)
