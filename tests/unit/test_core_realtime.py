"""Unit tests for the real-time Doppler-shaped generator (Section 5)."""

import numpy as np
import pytest

from repro.channels import clarke_autocorrelation
from repro.core import CovarianceSpec, RealTimeRayleighGenerator
from repro.exceptions import DopplerError, GenerationError
from repro.signal import normalized_autocorrelation


@pytest.fixture(scope="module")
def small_generator(eq22_covariance=None):
    # Use a 2x2 covariance to keep module-scoped generation cheap.
    covariance = np.array([[1.0, 0.5 + 0.3j], [0.5 - 0.3j, 1.0]])
    return RealTimeRayleighGenerator(
        covariance, normalized_doppler=0.05, n_points=2048, rng=7
    )


class TestConstruction:
    def test_paper_defaults(self, eq22_covariance):
        generator = RealTimeRayleighGenerator(
            eq22_covariance, normalized_doppler=0.05, n_points=4096, rng=0
        )
        assert generator.n_points == 4096
        assert generator.normalized_doppler == 0.05
        assert generator.n_branches == 3
        assert generator.compensates_variance

    def test_filter_output_variance_exposed(self, small_generator):
        # For M = 2048, fm = 0.05, sigma_orig^2 = 0.5 the output variance is
        # far below 1, which is why compensation matters.
        assert 0 < small_generator.filter_output_variance < 1e-2

    def test_invalid_doppler(self, eq22_covariance):
        with pytest.raises(DopplerError):
            RealTimeRayleighGenerator(eq22_covariance, normalized_doppler=0.9, rng=0)

    def test_accepts_spec(self, eq22_spec):
        generator = RealTimeRayleighGenerator(
            eq22_spec, normalized_doppler=0.05, n_points=1024, rng=0
        )
        assert generator.spec is eq22_spec

    def test_doppler_filter_copy(self, small_generator):
        coeffs = small_generator.doppler_filter
        coeffs[:] = 0
        assert np.any(small_generator.doppler_filter > 0)


class TestGeneration:
    def test_block_shape(self, small_generator):
        block = small_generator.generate_gaussian(1)
        assert block.samples.shape == (2, 2048)

    def test_multi_block_shape(self, small_generator):
        assert small_generator.generate(2).shape == (2, 4096)

    def test_envelopes_non_negative(self, small_generator):
        env = small_generator.generate_envelopes(1)
        assert np.all(env.envelopes >= 0)

    def test_invalid_block_count(self, small_generator):
        with pytest.raises(GenerationError):
            small_generator.generate(0)

    def test_metadata(self, small_generator):
        block = small_generator.generate_gaussian(1)
        assert block.metadata["method"] == "realtime"
        assert block.metadata["normalized_doppler"] == 0.05
        assert block.metadata["compensate_variance"] is True

    def test_reproducible(self):
        covariance = np.array([[1.0, 0.4], [0.4, 1.0]], dtype=complex)
        a = RealTimeRayleighGenerator(
            covariance, normalized_doppler=0.1, n_points=512, rng=3
        ).generate(1)
        b = RealTimeRayleighGenerator(
            covariance, normalized_doppler=0.1, n_points=512, rng=3
        ).generate(1)
        assert np.allclose(a, b)

    def test_branches_use_independent_streams(self):
        covariance = np.eye(2, dtype=complex)
        samples = RealTimeRayleighGenerator(
            covariance, normalized_doppler=0.1, n_points=4096, rng=5
        ).generate(1)
        correlation = np.abs(
            np.vdot(samples[0], samples[1])
            / np.sqrt(np.vdot(samples[0], samples[0]) * np.vdot(samples[1], samples[1]))
        )
        assert correlation < 0.1


class TestStatisticalProperties:
    @pytest.fixture(scope="class")
    def generated(self):
        covariance = np.array([[1.0, 0.6 + 0.2j], [0.6 - 0.2j, 2.0]])
        generator = RealTimeRayleighGenerator(
            covariance, normalized_doppler=0.05, n_points=4096, rng=13
        )
        return covariance, generator, generator.generate(12)

    def test_achieved_covariance(self, generated):
        covariance, _, samples = generated
        achieved = samples @ samples.conj().T / samples.shape[1]
        assert np.max(np.abs(achieved - covariance)) < 0.15

    def test_branch_powers_compensated(self, generated):
        covariance, _, samples = generated
        powers = np.mean(np.abs(samples) ** 2, axis=1)
        assert powers[0] == pytest.approx(1.0, rel=0.1)
        assert powers[1] == pytest.approx(2.0, rel=0.1)

    def test_temporal_autocorrelation_is_clarke(self, generated):
        _, generator, samples = generated
        acf = np.real(normalized_autocorrelation(samples[0][:4096], max_lag=60))
        reference = clarke_autocorrelation(np.arange(61), generator.normalized_doppler)
        assert np.sqrt(np.mean((acf - reference) ** 2)) < 0.15

    def test_uncompensated_variant_scales_by_filter_variance(self):
        covariance = np.array([[1.0, 0.3], [0.3, 1.0]], dtype=complex)
        generator = RealTimeRayleighGenerator(
            covariance,
            normalized_doppler=0.05,
            n_points=4096,
            compensate_variance=False,
            rng=17,
        )
        samples = generator.generate(6)
        powers = np.mean(np.abs(samples) ** 2, axis=1)
        sigma_g2 = generator.filter_output_variance
        # Powers equal sigma_g^2 * requested ( = sigma_g^2 ), not 1.
        assert np.allclose(powers, sigma_g2, rtol=0.15)
        assert np.all(powers < 0.01)


class TestBackendAndCache:
    """The realtime generator rides the batched substrate and engine seam."""

    def test_scipy_backend_bit_identical(self):
        pytest.importorskip("scipy")
        covariance = np.array([[1.0, 0.5 + 0.3j], [0.5 - 0.3j, 1.0]])
        reference = RealTimeRayleighGenerator(
            covariance, normalized_doppler=0.05, n_points=256, rng=11
        ).generate(2)
        via_scipy = RealTimeRayleighGenerator(
            covariance, normalized_doppler=0.05, n_points=256, rng=11, backend="scipy"
        ).generate(2)
        assert np.array_equal(reference, via_scipy)

    def test_unknown_backend_rejected(self):
        from repro.exceptions import BackendError

        covariance = np.eye(2, dtype=complex)
        with pytest.raises(BackendError):
            RealTimeRayleighGenerator(
                covariance, normalized_doppler=0.05, n_points=64, backend="nope"
            )

    def test_private_cache_isolates_decompositions(self):
        from repro.engine import DecompositionCache

        covariance = np.array([[1.0, 0.4], [0.4, 1.0]], dtype=complex)
        cache = DecompositionCache()
        RealTimeRayleighGenerator(
            covariance, normalized_doppler=0.05, n_points=64, rng=1, cache=cache
        )
        assert len(cache) == 1
        # Disabled cache: construction still works, nothing is stored.
        disabled = DecompositionCache(maxsize=0)
        generator = RealTimeRayleighGenerator(
            covariance, normalized_doppler=0.05, n_points=64, rng=1, cache=disabled
        )
        assert len(disabled) == 0
        assert generator.generate(1).shape == (2, 64)
