"""Unit tests for repro.linalg.checks."""

import numpy as np
import pytest

from repro.exceptions import DimensionError, NotHermitianError
from repro.linalg import (
    assert_hermitian,
    assert_square,
    hermitian_part,
    is_hermitian,
    is_positive_definite,
    is_positive_semidefinite,
    min_eigenvalue,
)


class TestAssertSquare:
    def test_accepts_square(self):
        arr = assert_square(np.eye(3))
        assert arr.shape == (3, 3)

    def test_rejects_vector(self):
        with pytest.raises(DimensionError):
            assert_square(np.ones(3))

    def test_rejects_rectangular(self):
        with pytest.raises(DimensionError):
            assert_square(np.ones((2, 3)))

    def test_rejects_empty(self):
        with pytest.raises(DimensionError):
            assert_square(np.zeros((0, 0)))

    def test_rejects_3d(self):
        with pytest.raises(DimensionError):
            assert_square(np.ones((2, 2, 2)))


class TestIsHermitian:
    def test_real_symmetric_is_hermitian(self):
        assert is_hermitian(np.array([[2.0, 1.0], [1.0, 3.0]]))

    def test_complex_hermitian(self):
        assert is_hermitian(np.array([[1.0, 1j], [-1j, 2.0]]))

    def test_complex_non_hermitian(self):
        assert not is_hermitian(np.array([[1.0, 1j], [1j, 2.0]]))

    def test_tiny_asymmetry_tolerated(self):
        matrix = np.array([[1.0, 0.5 + 1e-13], [0.5, 1.0]])
        assert is_hermitian(matrix)

    def test_assert_hermitian_raises_with_magnitude(self):
        with pytest.raises(NotHermitianError, match="not Hermitian"):
            assert_hermitian(np.array([[1.0, 2.0], [0.0, 1.0]]))

    def test_hermitian_part_symmetrizes(self):
        matrix = np.array([[1.0, 2.0], [0.0, 1.0]])
        sym = hermitian_part(matrix)
        assert is_hermitian(sym)
        assert sym[0, 1] == pytest.approx(1.0)


class TestDefiniteness:
    def test_identity_is_pd_and_psd(self):
        assert is_positive_definite(np.eye(4))
        assert is_positive_semidefinite(np.eye(4))

    def test_rank_deficient_is_psd_not_pd(self):
        matrix = np.ones((3, 3))
        assert is_positive_semidefinite(matrix)
        assert not is_positive_definite(matrix)

    def test_indefinite_is_neither(self, indefinite_covariance):
        assert not is_positive_semidefinite(indefinite_covariance)
        assert not is_positive_definite(indefinite_covariance)

    def test_scaling_invariance(self, indefinite_covariance):
        assert not is_positive_semidefinite(indefinite_covariance * 1e8)
        assert is_positive_semidefinite(np.eye(3) * 1e-8)

    def test_min_eigenvalue_identity(self):
        assert min_eigenvalue(np.eye(3) * 2.0) == pytest.approx(2.0)

    def test_min_eigenvalue_indefinite_is_negative(self, indefinite_covariance):
        assert min_eigenvalue(indefinite_covariance) < 0

    def test_complex_hermitian_psd(self, eq22_covariance):
        assert is_positive_semidefinite(eq22_covariance)
        assert is_positive_definite(eq22_covariance)
