"""Unit tests for the single-branch IDFT Rayleigh generator (Fig. 2)."""

import numpy as np
import pytest
from scipy.special import j0

from repro.channels import IDFTRayleighGenerator
from repro.exceptions import DimensionError, DopplerError
from repro.signal import normalized_autocorrelation


class TestConstruction:
    def test_paper_configuration(self):
        gen = IDFTRayleighGenerator(4096, 0.05, input_variance_per_dim=0.5, rng=0)
        assert gen.n_points == 4096
        assert gen.normalized_doppler == 0.05
        assert gen.input_variance_per_dim == 0.5

    def test_invalid_doppler_raises(self):
        with pytest.raises(DopplerError):
            IDFTRayleighGenerator(1024, 0.7)

    def test_filter_coefficients_copy(self):
        gen = IDFTRayleighGenerator(256, 0.1, rng=0)
        coeffs = gen.filter_coefficients
        coeffs[:] = 0.0
        assert np.any(gen.filter_coefficients > 0)

    def test_output_variance_positive(self):
        gen = IDFTRayleighGenerator(1024, 0.05, rng=0)
        assert gen.output_variance > 0


class TestGeneration:
    def test_block_shape_and_dtype(self):
        gen = IDFTRayleighGenerator(512, 0.05, rng=1)
        block = gen.generate_block()
        assert block.shape == (512,)
        assert np.iscomplexobj(block)

    def test_envelope_block_non_negative(self):
        gen = IDFTRayleighGenerator(512, 0.05, rng=2)
        assert np.all(gen.generate_envelope_block() >= 0)

    def test_reproducible_with_same_seed(self):
        a = IDFTRayleighGenerator(256, 0.1, rng=3).generate_block()
        b = IDFTRayleighGenerator(256, 0.1, rng=3).generate_block()
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = IDFTRayleighGenerator(256, 0.1, rng=3).generate_block()
        b = IDFTRayleighGenerator(256, 0.1, rng=4).generate_block()
        assert not np.allclose(a, b)

    def test_blocks_shape(self):
        gen = IDFTRayleighGenerator(128, 0.1, rng=5)
        blocks = gen.generate_blocks(3)
        assert blocks.shape == (3, 128)

    def test_blocks_are_independent(self):
        gen = IDFTRayleighGenerator(128, 0.1, rng=6)
        blocks = gen.generate_blocks(2)
        assert not np.allclose(blocks[0], blocks[1])

    def test_invalid_block_count(self):
        gen = IDFTRayleighGenerator(128, 0.1, rng=7)
        with pytest.raises(DimensionError):
            gen.generate_blocks(0)

    def test_rng_override_per_call(self):
        gen = IDFTRayleighGenerator(128, 0.1, rng=8)
        a = gen.generate_block(rng=100)
        b = IDFTRayleighGenerator(128, 0.1, rng=9).generate_block(rng=100)
        assert np.allclose(a, b)


class TestStatisticalProperties:
    @pytest.fixture(scope="class")
    def big_block(self):
        gen = IDFTRayleighGenerator(16384, 0.05, input_variance_per_dim=0.5, rng=11)
        return gen, gen.generate_block()

    def test_zero_mean(self, big_block):
        _, block = big_block
        assert abs(np.mean(block)) < 0.05 * np.sqrt(np.mean(np.abs(block) ** 2))

    def test_variance_matches_eq19(self, big_block):
        gen, block = big_block
        assert np.mean(np.abs(block) ** 2) == pytest.approx(gen.output_variance, rel=0.1)

    def test_autocorrelation_follows_clarke_model(self, big_block):
        gen, block = big_block
        acf = np.real(normalized_autocorrelation(block, max_lag=60))
        reference = j0(2 * np.pi * gen.normalized_doppler * np.arange(61))
        assert np.sqrt(np.mean((acf - reference) ** 2)) < 0.1

    def test_real_imag_balance(self, big_block):
        _, block = big_block
        ratio = np.var(block.real) / np.var(block.imag)
        assert 0.8 < ratio < 1.25

    def test_envelope_is_rayleigh_like(self, big_block):
        gen, block = big_block
        envelope = np.abs(block)
        # For a Rayleigh envelope, mean = sigma_g sqrt(pi)/2 with sigma_g^2 the
        # complex Gaussian power.
        sigma_g = np.sqrt(np.mean(envelope**2))
        assert np.mean(envelope) == pytest.approx(sigma_g * np.sqrt(np.pi) / 2.0, rel=0.05)
