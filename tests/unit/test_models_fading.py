"""Unit tests for the fading-model registry and spec layer.

The coarse behavioural invariants (byte-identity, reference tolerances,
shadowing purity) live in ``tests/property/test_property_fading_models.py``;
this module pins down the edges: registry resolution, ``coerce_fading``
error paths (every malformed spec must raise a ``ValueError`` naming the
offending field), cache-key contributions, compile grouping, and the
reprolint markers the hot path depends on.
"""

from pathlib import Path

import numpy as np
import pytest

import repro.models.fading as fading_module
from repro.analysis.framework import ModuleInfo
from repro.engine import SimulationPlan
from repro.engine.plancache import compiled_plan_cache_key
from repro.exceptions import ReproError, SpecificationError
from repro.models import (
    FadingModel,
    FadingSpec,
    available_fading_models,
    coerce_fading,
    get_fading_model,
    register_fading_model,
    shadowing_gains,
)

BASE = np.array([[1.0, 0.4 + 0.1j], [0.4 - 0.1j, 1.5]], dtype=complex)


class TestRegistry:
    def test_all_zoo_models_registered(self):
        names = available_fading_models()
        assert set(names) >= {"rayleigh", "rician", "nakagami", "weibull"}
        assert list(names) == sorted(names)

    def test_unknown_model_error_names_the_field(self):
        with pytest.raises(ValueError, match="fading.model"):
            get_fading_model("rice")
        with pytest.raises(ValueError, match="fading.model"):
            get_fading_model(None)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(SpecificationError, match="already registered"):
            register_fading_model(get_fading_model("rician"))

    def test_non_model_registration_rejected(self):
        with pytest.raises(SpecificationError, match="FadingModel"):
            register_fading_model("rician")

    def test_descriptors_declare_their_invariant(self):
        assert get_fading_model("rayleigh").exact
        assert get_fading_model("rician").exact
        for name in ("nakagami", "weibull"):
            descriptor = get_fading_model(name)
            assert not descriptor.exact
            assert 0.0 < descriptor.rtol <= 1e-12


class TestCoerceFading:
    """Every entry point normalizes through ``coerce_fading``."""

    def test_none_and_trivial_collapse(self):
        assert coerce_fading(None) is None
        assert coerce_fading("rayleigh") is None
        assert coerce_fading({"model": "rayleigh"}) is None
        assert coerce_fading(FadingSpec()) is None

    def test_nontrivial_specs_pass_through(self):
        spec = FadingSpec(model="rician", shape=3.0)
        assert coerce_fading(spec) is spec
        via_mapping = coerce_fading({"model": "rician", "shape": 3.0})
        assert via_mapping == spec

    def test_shadowed_rayleigh_is_not_trivial(self):
        spec = coerce_fading({"model": "rayleigh", "shadowing_sigma_db": 4.0})
        assert spec is not None
        assert spec.has_shadowing
        assert spec.family == ("rayleigh", True)

    def test_missing_shape_names_the_field(self):
        with pytest.raises(ValueError, match="fading.shape is required"):
            coerce_fading("rician")

    def test_rayleigh_rejects_shape(self):
        with pytest.raises(ValueError, match="fading.shape must be None"):
            coerce_fading({"model": "rayleigh", "shape": 2.0})

    def test_non_numeric_shape_names_the_field(self):
        with pytest.raises(ValueError, match="fading.shape"):
            coerce_fading({"model": "weibull", "shape": "wide"})

    @pytest.mark.parametrize(
        "model, shape",
        [("rician", -0.5), ("nakagami", 0.25), ("weibull", 0.0), ("weibull", float("inf"))],
    )
    def test_out_of_range_shape_rejected(self, model, shape):
        with pytest.raises(ValueError, match="fading.shape"):
            coerce_fading({"model": model, "shape": shape})

    @pytest.mark.parametrize("sigma", [-1.0, float("nan"), "loud"])
    def test_bad_shadowing_sigma_names_the_field(self, sigma):
        with pytest.raises(ValueError, match="fading.shadowing_sigma_db"):
            coerce_fading({"model": "rician", "shape": 1.0, "shadowing_sigma_db": sigma})

    def test_unknown_mapping_keys_rejected(self):
        with pytest.raises(ValueError, match="k_factor"):
            coerce_fading({"model": "rician", "k_factor": 3.0})

    def test_unsupported_type_rejected(self):
        with pytest.raises(ValueError, match="fading must be"):
            coerce_fading(3.5)

    def test_errors_are_repro_and_value_errors(self):
        """The CLI maps ReproError, the HTTP layer needs ValueError: both."""
        with pytest.raises(SpecificationError) as excinfo:
            coerce_fading("rice")
        assert isinstance(excinfo.value, ValueError)
        assert isinstance(excinfo.value, ReproError)


class TestCacheKeyContribution:
    def test_fading_token_is_pure_content(self):
        spec = FadingSpec(model="nakagami", shape=1.5, shadowing_sigma_db=2.0)
        assert spec.fading_token() == repr(("fading", "nakagami", 1.5, 2.0))
        assert spec.fading_token() == FadingSpec(
            model="nakagami", shape=1.5, shadowing_sigma_db=2.0
        ).fading_token()

    def test_tokens_distinguish_models_and_parameters(self):
        tokens = {
            FadingSpec(model="rician", shape=2.0).fading_token(),
            FadingSpec(model="rician", shape=3.0).fading_token(),
            FadingSpec(model="nakagami", shape=2.0).fading_token(),
            FadingSpec(model="rician", shape=2.0, shadowing_sigma_db=3.0).fading_token(),
        }
        assert len(tokens) == 4

    def test_compiled_plan_cache_key_splits_on_fading(self):
        def key(fading):
            plan = SimulationPlan()
            plan.add(BASE, seed=1, fading=fading)
            return compiled_plan_cache_key(plan)

        keys = {
            key(None),
            key({"model": "rician", "shape": 4.0}),
            key({"model": "rician", "shape": 5.0}),
            key({"model": "weibull", "shape": 4.0}),
            key({"model": "rayleigh", "shadowing_sigma_db": 6.0}),
        }
        assert len(keys) == 5

    def test_trivial_spec_shares_the_fast_path_key(self):
        plain = SimulationPlan()
        plain.add(BASE, seed=1)
        trivial = SimulationPlan()
        trivial.add(BASE, seed=1, fading="rayleigh")
        assert compiled_plan_cache_key(plain) == compiled_plan_cache_key(trivial)


class TestPlanIntegration:
    def test_trivial_fading_collapses_on_the_entry(self):
        plan = SimulationPlan()
        plan.add(BASE, seed=2, fading={"model": "rayleigh", "shadowing_sigma_db": 0.0})
        assert plan[0].fading is None

    def test_group_key_splits_by_family_not_shape(self):
        plan = SimulationPlan()
        plan.add(BASE, seed=1, fading={"model": "rician", "shape": 2.0})
        plan.add(BASE, seed=2, fading={"model": "rician", "shape": 9.0})
        plan.add(BASE, seed=3, fading={"model": "weibull", "shape": 1.5})
        plan.add(
            BASE,
            seed=4,
            fading={"model": "rician", "shape": 2.0, "shadowing_sigma_db": 5.0},
        )
        plan.add(BASE, seed=5)
        keys = [entry.group_key for entry in plan]
        assert keys[0] == keys[1]  # same family: shapes stack per-entry
        assert len({keys[0], keys[2], keys[3], keys[4]}) == 4

    def test_shadowing_gains_reject_non_integer_seeds(self):
        for bad_seed in (True, None, 3.0, np.random.default_rng(0)):
            with pytest.raises(ValueError, match="integer per-entry seed"):
                shadowing_gains(bad_seed, 3.0, 2)


class TestLintMarkers:
    """The transform module must stay under reprolint's hot-path rules."""

    def test_fading_module_is_hot_marked(self):
        path = Path(fading_module.__file__)
        module = ModuleInfo(path, "src/repro/models/fading.py", path.read_text())
        assert module.hot_module
        marked = {
            node.name
            for node in module.tree.body
            if hasattr(node, "name")
            and hasattr(node, "args")
            and module.has_header_marker(node, module.hot_path_lines)
        }
        assert "apply_fading_block" in marked
        workspace = {
            node.name
            for node in module.tree.body
            if hasattr(node, "name")
            and hasattr(node, "args")
            and module.has_header_marker(node, module.workspace_lines)
        }
        assert "build_fading_stacks" in workspace

    def test_fading_token_is_a_key_purity_root(self):
        from repro.analysis.key_purity import ROOT_NAMES

        assert "fading_token" in ROOT_NAMES
