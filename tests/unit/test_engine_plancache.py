"""Unit tests for the compiled-plan cache (:mod:`repro.engine.plancache`).

The executor-level tier: whole :class:`CompiledPlan` artifacts on disk,
keyed by the content hash of the ``(plan, backend namespace)`` pair.  The
two standing invariants are exercised at this level too: a disk hit is
bit-identical to a fresh compilation (and performs **zero**
``eigh``/``cholesky``/filter-build calls), and a corrupt or truncated
artifact is a miss that recompiles and re-spills, never an error.
"""

import numpy as np
import pytest

from repro.config import DEFAULTS
from repro.engine import (
    CompiledPlanCache,
    DecompositionCache,
    DopplerFilterCache,
    DopplerSpec,
    SimulationPlan,
    compile_plan,
    compiled_plan_cache_key,
    execute_plan,
)


@pytest.fixture()
def base_matrix():
    return np.array([[1.0, 0.4 + 0.1j], [0.4 - 0.1j, 2.0]], dtype=complex)


def _mixed_plan(base, seed_offset=0):
    non_psd = np.array(
        [[1.0, 0.9, 0.9], [0.9, 1.0, 0.9], [0.9, 0.9, 0.2]], dtype=complex
    )
    plan = SimulationPlan()
    plan.add(base, seed=11 + seed_offset)
    plan.add(2.0 * base, seed=12 + seed_offset)
    plan.add(base, seed=13 + seed_offset)     # repeated matrix
    plan.add(non_psd, seed=14 + seed_offset)  # PSD repair path
    plan.add(
        base,
        seed=15 + seed_offset,
        doppler=DopplerSpec(normalized_doppler=0.05, n_points=64),
    )
    return plan


def _compile(plan, cache_dir=None):
    return compile_plan(
        plan,
        cache=DecompositionCache(),
        filter_cache=DopplerFilterCache(),
        plan_cache=(
            CompiledPlanCache() if cache_dir is None else CompiledPlanCache(cache_dir)
        ),
    )


class TestKey:
    def test_seeds_and_labels_do_not_split_keys(self, base_matrix):
        with_seeds = _mixed_plan(base_matrix, seed_offset=0)
        reseeded = _mixed_plan(base_matrix, seed_offset=100)
        assert compiled_plan_cache_key(with_seeds) == compiled_plan_cache_key(reseeded)

        labeled = SimulationPlan()
        labeled.add(base_matrix, seed=1, label="scenario-a")
        unlabeled = SimulationPlan()
        unlabeled.add(base_matrix, seed=2)
        assert compiled_plan_cache_key(labeled) == compiled_plan_cache_key(unlabeled)

    def test_compile_inputs_split_keys(self, base_matrix):
        reference = SimulationPlan()
        reference.add(base_matrix, seed=1)
        base_key = compiled_plan_cache_key(reference)

        perturbed = SimulationPlan()
        perturbed.add(base_matrix * 1.0001, seed=1)
        assert compiled_plan_cache_key(perturbed) != base_key

        cholesky = SimulationPlan()
        cholesky.add(base_matrix, seed=1, coloring_method="cholesky")
        assert compiled_plan_cache_key(cholesky) != base_key

        doppler = SimulationPlan()
        doppler.add(base_matrix, seed=1, doppler=DopplerSpec(0.05, 64))
        assert compiled_plan_cache_key(doppler) != base_key

        uncompensated = SimulationPlan()
        uncompensated.add(
            base_matrix, seed=1, doppler=DopplerSpec(0.05, 64, compensate_variance=False)
        )
        assert compiled_plan_cache_key(uncompensated) != compiled_plan_cache_key(doppler)

        variance = SimulationPlan()
        variance.add(base_matrix, seed=1, sample_variance=2.0)
        assert compiled_plan_cache_key(variance) != base_key

    def test_backend_token_namespaces_keys(self, base_matrix):
        plan = SimulationPlan()
        plan.add(base_matrix, seed=1)
        assert compiled_plan_cache_key(plan, cache_token="numpy") != compiled_plan_cache_key(
            plan, cache_token="gpu"
        )

    def test_entry_order_matters(self, base_matrix):
        forward = SimulationPlan()
        forward.add(base_matrix, seed=1)
        forward.add(2.0 * base_matrix, seed=2)
        backward = SimulationPlan()
        backward.add(2.0 * base_matrix, seed=1)
        backward.add(base_matrix, seed=2)
        assert compiled_plan_cache_key(forward) != compiled_plan_cache_key(backward)


class TestRoundTrip:
    def test_warm_hit_is_bit_identical_and_computes_nothing(
        self, base_matrix, tmp_path, monkeypatch
    ):
        plan = _mixed_plan(base_matrix)
        cold = _compile(plan, tmp_path)
        assert cold.report.plan_cache_hits == 0
        cold_result = execute_plan(cold, 64)

        # The acceptance criterion, enforced literally: a warm hit must not
        # call the stacked decomposition or the filter builder at all.
        import repro.channels.doppler as doppler_module
        import repro.core.coloring as coloring_module

        def forbidden(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("a warm plan-cache hit must not compute")

        monkeypatch.setattr(coloring_module, "compute_coloring_batch", forbidden)
        monkeypatch.setattr(doppler_module, "young_beaulieu_filter", forbidden)

        warm = _compile(plan, tmp_path)
        assert warm.report.plan_cache_hits == 1
        assert warm.report.cache_hits == warm.report.cache_misses == 0
        warm_result = execute_plan(warm, 64)
        for cold_block, warm_block in zip(cold_result.blocks, warm_result.blocks):
            assert cold_block.samples.tobytes() == warm_block.samples.tobytes()

    def test_artifact_rebinds_to_callers_plan(self, base_matrix, tmp_path):
        # Seeds and labels come from the *caller's* plan, not the artifact:
        # a re-seeded sweep warm-starts from the same entry and produces the
        # re-seeded samples.
        _compile(_mixed_plan(base_matrix, seed_offset=0), tmp_path)
        reseeded = _mixed_plan(base_matrix, seed_offset=100)
        warm = _compile(reseeded, tmp_path)
        assert warm.report.plan_cache_hits == 1
        fresh = _compile(_mixed_plan(base_matrix, seed_offset=100))
        warm_result = execute_plan(warm, 32)
        fresh_result = execute_plan(fresh, 32)
        for warm_block, fresh_block in zip(warm_result.blocks, fresh_result.blocks):
            assert warm_block.samples.tobytes() == fresh_block.samples.tobytes()

    def test_diagnostics_survive_the_round_trip(self, base_matrix, tmp_path):
        plan = _mixed_plan(base_matrix)
        cold = _compile(plan, tmp_path)
        warm = _compile(plan, tmp_path)
        assert warm.report.plan_cache_hits == 1
        for index in range(plan.n_entries):
            cold_d = cold.decomposition_for(index)
            warm_d = warm.decomposition_for(index)
            assert warm_d.method == cold_d.method
            assert warm_d.was_repaired == cold_d.was_repaired
            assert warm_d.min_eigenvalue == cold_d.min_eigenvalue
            assert warm_d.extra == cold_d.extra
        assert warm.decomposition_for(3).was_repaired  # the non-PSD entry

    def test_loaded_arrays_are_frozen(self, base_matrix, tmp_path):
        plan = _mixed_plan(base_matrix)
        _compile(plan, tmp_path)
        warm = _compile(plan, tmp_path)
        group = warm.groups[0]
        assert not group.decompositions[0].coloring_matrix.flags.writeable
        doppler_group = next(g for g in warm.groups if g.is_doppler)
        assert not doppler_group.doppler_filter.flags.writeable

    def test_report_structure_preserved(self, base_matrix, tmp_path):
        plan = _mixed_plan(base_matrix)
        cold = _compile(plan, tmp_path)
        warm = _compile(plan, tmp_path)
        assert warm.report.n_entries == cold.report.n_entries
        assert warm.report.n_groups == cold.report.n_groups
        assert warm.report.n_unique_matrices == cold.report.n_unique_matrices
        assert warm.report.doppler_entries == cold.report.doppler_entries
        assert warm.report.doppler_filters_built == cold.report.doppler_filters_built

    def test_detached_cache_is_a_noop(self, base_matrix):
        plan = _mixed_plan(base_matrix)
        first = _compile(plan)
        second = _compile(plan)
        assert first.report.plan_cache_hits == 0
        assert second.report.plan_cache_hits == 0

    def test_explicit_cache_keeps_plan_tier_detached(
        self, base_matrix, tmp_path, monkeypatch
    ):
        # An explicitly configured decomposition cache — e.g. the documented
        # no-reuse baseline DecompositionCache(maxsize=0) — must never be
        # silently short-circuited by an env-attached plans/ tier: the
        # plan-cache default follows the decomposition-cache default.
        import repro.engine.plancache as plancache_module

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setattr(plancache_module, "_DEFAULT_PLAN_CACHE", None)
        plan = _mixed_plan(base_matrix)
        for _ in range(2):
            compiled = compile_plan(plan, cache=DecompositionCache(maxsize=0))
            assert compiled.report.plan_cache_hits == 0
            assert compiled.report.cache_misses > 0  # actually recomputed
        assert not (tmp_path / "plans").exists()
        # A default-cache compile, by contrast, does use the env-attached
        # process-wide plan cache.
        compile_plan(plan)
        assert (tmp_path / "plans").exists()
        monkeypatch.setattr(plancache_module, "_DEFAULT_PLAN_CACHE", None)


class TestCorruption:
    """A corrupt or truncated artifact is a miss: recompute and re-spill."""

    def _artifact(self, tmp_path):
        (path,) = (tmp_path / "plans").glob("*.npz")
        return path

    def test_truncated_artifact_recompiles_and_respills(self, base_matrix, tmp_path):
        plan = _mixed_plan(base_matrix)
        cold = _compile(plan, tmp_path)
        cold_result = execute_plan(cold, 64)

        # Truncate the artifact mid-file: the next compile must treat it as
        # a miss, recompute everything, and leave a valid artifact behind.
        path = self._artifact(tmp_path)
        payload = path.read_bytes()
        path.write_bytes(payload[: len(payload) // 2])

        recompiling_cache = CompiledPlanCache(tmp_path)
        recompiled = compile_plan(
            plan,
            cache=DecompositionCache(),
            filter_cache=DopplerFilterCache(),
            plan_cache=recompiling_cache,
        )
        assert recompiled.report.plan_cache_hits == 0
        stats = recompiling_cache.stats
        assert stats.corruptions == 1
        assert stats.misses == 1
        recompiled_result = execute_plan(recompiled, 64)
        for cold_block, new_block in zip(cold_result.blocks, recompiled_result.blocks):
            assert cold_block.samples.tobytes() == new_block.samples.tobytes()

        # Re-spilled: the artifact is valid again for the next "process".
        assert self._artifact(tmp_path).exists()
        warm = _compile(plan, tmp_path)
        assert warm.report.plan_cache_hits == 1

    def test_rebind_failure_quarantines_instead_of_poisoning(
        self, base_matrix, tmp_path, monkeypatch
    ):
        # The digest protects bytes, not meaning: an artifact that verifies
        # but fails re-binding (layout bug, key collision) must be
        # quarantined so the recompiled plan re-spills over it — not left
        # in place with the key marked no-spill, poisoning every future
        # process with a load+verify+failed-rebind+recompute cycle.
        import repro.engine.plancache as plancache_module

        plan = _mixed_plan(base_matrix)
        _compile(plan, tmp_path)
        monkeypatch.setattr(
            plancache_module, "_compiled_from_artifact", lambda *a, **k: None
        )
        broken_cache = CompiledPlanCache(tmp_path)
        compiled = compile_plan(
            plan, cache=DecompositionCache(), plan_cache=broken_cache
        )
        assert compiled.report.plan_cache_hits == 0
        stats = broken_cache.stats
        assert (stats.hits, stats.misses, stats.corruptions) == (0, 1, 1)
        assert list((tmp_path / "plans").glob("*.quarantine"))
        # The recompiled plan re-spilled; with rebinding restored, the next
        # process hits again.
        monkeypatch.undo()
        warm = _compile(plan, tmp_path)
        assert warm.report.plan_cache_hits == 1

    def test_garbage_artifact_is_a_counted_miss(self, base_matrix, tmp_path):
        plan = _mixed_plan(base_matrix)
        _compile(plan, tmp_path)
        self._artifact(tmp_path).write_bytes(b"not an npz archive")
        cache = CompiledPlanCache(tmp_path)
        compiled = compile_plan(
            plan,
            cache=DecompositionCache(),
            filter_cache=DopplerFilterCache(),
            plan_cache=cache,
        )
        assert compiled.report.plan_cache_hits == 0
        assert cache.stats.corruptions == 1


def _compile_with(plan, plan_cache):
    return compile_plan(
        plan,
        cache=DecompositionCache(),
        filter_cache=DopplerFilterCache(),
        plan_cache=plan_cache,
    )


class TestMemoryTier:
    """The in-memory LRU tier fronting the compiled-plan disk tier.

    The tier's contract mirrors the disk tier's: a memory hit is
    bit-identical to a fresh compile and computes (and now *reads*)
    nothing; eviction is byte-bounded LRU; invalidation is coherent with
    the disk tier; a detached default-constructed cache stays a no-op.
    """

    def test_memory_hit_is_bit_identical_and_touches_nothing(
        self, base_matrix, tmp_path, monkeypatch
    ):
        plan = _mixed_plan(base_matrix)
        cache = CompiledPlanCache(tmp_path)
        cold = _compile_with(plan, cache)
        assert cold.report.plan_cache_hits == 0
        cold_result = execute_plan(cold, 64)

        # A memory-tier hit must neither compute nor read the disk tier:
        # forbid the stacked decomposition, the filter builder, and the
        # artifact store's lookup for the warm compile.
        import repro.channels.doppler as doppler_module
        import repro.core.coloring as coloring_module
        import repro.engine.store as store_module

        def forbidden(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("a memory-tier hit must not compute or read disk")

        monkeypatch.setattr(coloring_module, "compute_coloring_batch", forbidden)
        monkeypatch.setattr(doppler_module, "young_beaulieu_filter", forbidden)
        monkeypatch.setattr(store_module.ArtifactStore, "lookup", forbidden)

        warm = _compile_with(plan, cache)
        assert warm.report.plan_cache_hits == 1
        assert warm.report.plan_memory_hits == 1
        assert warm.report.cache_hits == warm.report.cache_misses == 0
        stats = cache.stats
        assert stats.memory_hits == 1
        warm_result = execute_plan(warm, 64)
        for cold_block, warm_block in zip(cold_result.blocks, warm_result.blocks):
            assert cold_block.samples.tobytes() == warm_block.samples.tobytes()

    def test_memory_hit_rebinds_to_callers_seeds(self, base_matrix, tmp_path):
        cache = CompiledPlanCache(tmp_path)
        _compile_with(_mixed_plan(base_matrix, seed_offset=0), cache)
        reseeded = _mixed_plan(base_matrix, seed_offset=100)
        warm = _compile_with(reseeded, cache)
        assert warm.report.plan_memory_hits == 1
        fresh = _compile(reseeded)
        warm_result = execute_plan(warm, 32)
        fresh_result = execute_plan(fresh, 32)
        for warm_block, fresh_block in zip(warm_result.blocks, fresh_result.blocks):
            assert warm_block.samples.tobytes() == fresh_block.samples.tobytes()

    def test_disk_hit_promotes_into_memory(self, base_matrix, tmp_path):
        plan = _mixed_plan(base_matrix)
        _compile_with(plan, CompiledPlanCache(tmp_path))
        cache = CompiledPlanCache(tmp_path)  # fresh process: empty memory
        first = _compile_with(plan, cache)
        assert first.report.plan_cache_hits == 1
        assert first.report.plan_memory_hits == 0  # served by disk
        second = _compile_with(plan, cache)
        assert second.report.plan_memory_hits == 1  # promoted
        stats = cache.stats
        assert (stats.hits, stats.memory_hits, stats.memory_misses) == (1, 1, 1)

    def test_lru_eviction_is_byte_bounded(self, base_matrix, tmp_path):
        plan_a = _mixed_plan(base_matrix)
        probe = CompiledPlanCache(tmp_path)
        _compile_with(plan_a, probe)
        entries, resident = probe.memory_usage()
        assert entries == 1 and resident > 0

        # A bound that holds exactly one plan: inserting a second (same
        # shapes, different matrices → different key, same byte size)
        # evicts the least recently used.
        bounded = CompiledPlanCache(tmp_path, memory_max_bytes=resident)
        _compile_with(plan_a, bounded)
        _compile_with(_mixed_plan(2.5 * base_matrix), bounded)
        assert bounded.memory_usage()[0] == 1
        assert bounded.stats.memory_evictions == 1
        # plan_a fell out of memory but still hits on disk.
        warm = _compile_with(plan_a, bounded)
        assert warm.report.plan_cache_hits == 1
        assert warm.report.plan_memory_hits == 0

    def test_oversized_plan_is_not_inserted(self, base_matrix, tmp_path):
        cache = CompiledPlanCache(tmp_path, memory_max_bytes=1)
        _compile_with(_mixed_plan(base_matrix), cache)
        assert cache.memory_usage() == (0, 0)
        assert cache.stats.memory_evictions == 0

    def test_invalidate_drops_both_tiers(self, base_matrix, tmp_path):
        plan = _mixed_plan(base_matrix)
        cache = CompiledPlanCache(tmp_path)
        _compile_with(plan, cache)
        assert cache.memory_usage()[0] == 1
        cache.invalidate(compiled_plan_cache_key(plan))
        assert cache.memory_usage()[0] == 0
        assert list((tmp_path / "plans").glob("*.quarantine"))

    def test_memory_rebind_failure_falls_back_to_disk(
        self, base_matrix, tmp_path, monkeypatch
    ):
        import repro.engine.plancache as plancache_module

        plan = _mixed_plan(base_matrix)
        cache = CompiledPlanCache(tmp_path)
        _compile_with(plan, cache)
        monkeypatch.setattr(
            plancache_module, "_rebind_memory_entry", lambda *a, **k: None
        )
        warm = _compile_with(plan, cache)
        assert warm.report.plan_cache_hits == 1
        assert warm.report.plan_memory_hits == 0
        assert cache.stats.hits == 1  # the disk tier served it, stats intact

    def test_pure_memory_cache_without_disk(self, base_matrix):
        plan = _mixed_plan(base_matrix)
        cache = CompiledPlanCache(memory_max_bytes=64 * 1024 * 1024)
        cold = _compile_with(plan, cache)
        assert cold.report.plan_cache_hits == 0
        warm = _compile_with(plan, cache)
        assert warm.report.plan_cache_hits == 1
        assert warm.report.plan_memory_hits == 1
        assert cache.stats.memory_hits == 1

    def test_detached_default_has_no_memory_tier(self, base_matrix):
        plan = _mixed_plan(base_matrix)
        cache = CompiledPlanCache()
        assert cache.memory_max_bytes == 0
        _compile_with(plan, cache)
        assert cache.memory_usage() == (0, 0)
        second = _compile_with(plan, cache)
        assert second.report.plan_cache_hits == 0

    def test_memory_entries_are_frozen(self, base_matrix, tmp_path):
        plan = _mixed_plan(base_matrix)
        cache = CompiledPlanCache(tmp_path)
        _compile_with(plan, cache)
        warm = _compile_with(plan, cache)
        assert warm.report.plan_memory_hits == 1
        group = warm.groups[0]
        assert not group.decompositions[0].coloring_matrix.flags.writeable
        doppler_group = next(g for g in warm.groups if g.is_doppler)
        assert not doppler_group.doppler_filter.flags.writeable

    def test_clear_memory_and_reset_stats(self, base_matrix, tmp_path):
        plan = _mixed_plan(base_matrix)
        cache = CompiledPlanCache(tmp_path)
        _compile_with(plan, cache)
        _compile_with(plan, cache)
        assert cache.stats.memory_hits == 1
        assert cache.clear_memory() == 1
        assert cache.memory_usage() == (0, 0)
        cache.reset_stats()
        stats = cache.stats
        assert (stats.memory_hits, stats.memory_misses, stats.memory_evictions) == (
            0,
            0,
            0,
        )


class TestMaintenance:
    def test_disk_usage_and_clear(self, base_matrix, tmp_path):
        _compile(_mixed_plan(base_matrix), tmp_path)
        cache = CompiledPlanCache(tmp_path)
        entries, total = cache.disk_usage()
        assert entries == 1
        assert total > 0
        assert cache.clear_disk() == 1
        assert cache.disk_usage() == (0, 0)

    def test_set_cache_dir_attaches_existing_artifacts(self, base_matrix, tmp_path):
        plan = _mixed_plan(base_matrix)
        _compile(plan, tmp_path)
        cache = CompiledPlanCache()
        cache.set_cache_dir(tmp_path)
        assert cache.cache_dir == tmp_path
        compiled = compile_plan(
            plan,
            cache=DecompositionCache(),
            filter_cache=DopplerFilterCache(),
            plan_cache=cache,
        )
        assert compiled.report.plan_cache_hits == 1


class TestInflightSingleflight:
    """The compile singleflight tier: one fresh compile per key, ever."""

    def test_join_finish_lead_and_follow(self, tmp_path):
        cache = CompiledPlanCache(tmp_path)
        assert cache.enabled
        assert cache.join_inflight("k") is None  # first caller leads
        event = cache.join_inflight("k")  # second coalesces
        assert event is not None and not event.is_set()
        cache.finish_inflight("k")
        assert event.is_set()
        # The finished key is gone: the next caller leads a fresh compile.
        assert cache.join_inflight("k") is None
        cache.finish_inflight("k")
        stats = cache.stats
        assert stats.inflight_leads == 2
        assert stats.inflight_coalesced == 1

    def test_detached_cache_is_strict_noop(self):
        cache = CompiledPlanCache()
        assert not cache.enabled
        # A detached cache never registers leaders: both calls are no-ops.
        assert cache.join_inflight("k") is None
        assert cache.join_inflight("k") is None
        cache.finish_inflight("k")  # harmless on an empty table
        stats = cache.stats
        assert stats.inflight_leads == 0
        assert stats.inflight_coalesced == 0

    def test_pure_memory_tier_enables_singleflight(self):
        cache = CompiledPlanCache(memory_max_bytes=1024 * 1024)
        assert cache.enabled
        assert cache.join_inflight("k") is None
        assert cache.join_inflight("k") is not None
        cache.finish_inflight("k")

    def test_reset_stats_zeroes_inflight_counters(self, tmp_path):
        cache = CompiledPlanCache(tmp_path)
        cache.join_inflight("k")
        cache.join_inflight("k")
        cache.finish_inflight("k")
        cache.reset_stats()
        stats = cache.stats
        assert stats.inflight_leads == 0
        assert stats.inflight_coalesced == 0

    def test_concurrent_equal_compiles_share_one_fresh_compile(
        self, base_matrix, tmp_path
    ):
        """N threads, equal plan hash: one leader compiles, N-1 coalesce."""
        import threading

        from repro.engine.backends import NumpyBackend

        n_threads = 4

        class GatedBackend(NumpyBackend):
            name = "gated-numpy"
            tolerance = 1e-299

            def __init__(self):
                self.entered = threading.Event()
                self.release = threading.Event()
                self.eigh_calls = 0
                self._lock = threading.Lock()

            def eigh(self, stack):
                with self._lock:
                    self.eigh_calls += 1
                self.entered.set()
                if not self.release.wait(timeout=10):  # pragma: no cover
                    raise RuntimeError("gate never released")
                return super().eigh(stack)

        backend = GatedBackend()
        cache = CompiledPlanCache(tmp_path)
        decomp = DecompositionCache()
        filters = DopplerFilterCache()
        results = [None] * n_threads
        errors = []

        def worker(index):
            # Same matrix, different seeds: equal compiled-plan hash.
            plan = SimulationPlan()
            plan.add(base_matrix, seed=100 + index)
            try:
                results[index] = compile_plan(
                    plan,
                    cache=decomp,
                    filter_cache=filters,
                    plan_cache=cache,
                    backend=backend,
                )
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        # The leader is stalled inside eigh; wait until every other thread
        # has registered as an in-flight follower, then open the gate.
        assert backend.entered.wait(timeout=10)
        deadline = 100
        while cache.stats.inflight_coalesced < n_threads - 1 and deadline:
            deadline -= 1
            threading.Event().wait(0.02)
        assert cache.stats.inflight_coalesced == n_threads - 1
        backend.release.set()
        for thread in threads:
            thread.join(timeout=10)
        assert not errors

        # Exactly one fresh compile: one leader, every follower cache-fed.
        stats = cache.stats
        assert stats.inflight_leads == 1
        leaders = [r for r in results if r.report.plan_cache_hits == 0]
        followers = [r for r in results if r.report.plan_cache_hits == 1]
        assert len(leaders) == 1
        assert len(followers) == n_threads - 1
        assert all(r.report.plan_inflight_hits == 1 for r in followers)
        assert leaders[0].report.plan_inflight_hits == 0

    def test_leader_failure_releases_key_for_reelection(self, base_matrix, tmp_path):
        """A failing leader must not strand followers or poison the key."""
        from conftest import FlakyBackend, InjectedFault

        backend = FlakyBackend(fail_at=1)
        cache = CompiledPlanCache(tmp_path)
        plan = SimulationPlan()
        plan.add(base_matrix, seed=7)
        with pytest.raises(InjectedFault):
            compile_plan(
                plan,
                cache=DecompositionCache(),
                filter_cache=DopplerFilterCache(),
                plan_cache=cache,
                backend=backend,
            )
        # The in-flight table is clean: no stuck event for the key.
        assert cache._inflight == {}
        # The next compile of the same plan leads afresh and succeeds.
        compiled = compile_plan(
            plan,
            cache=DecompositionCache(),
            filter_cache=DopplerFilterCache(),
            plan_cache=cache,
            backend=backend,
        )
        assert compiled.report.plan_cache_hits == 0
        assert cache.stats.inflight_leads == 2


class TestStatsFields:
    def test_stats_carry_inflight_counters(self, tmp_path):
        stats = CompiledPlanCache(tmp_path).stats
        assert stats.inflight_leads == 0
        assert stats.inflight_coalesced == 0
