"""Unit tests for the unified session API (:mod:`repro.api`).

The acceptance contract: ``Simulator(backend="numpy")`` results are
bit-identical to the pre-redesign helpers and to looped single-spec
generators for the same seeds, and ``asyncio.gather`` over several
``sim.submit(...)`` calls completes with per-plan results matching the
synchronous ``sim.run(...)``.
"""

import asyncio

import numpy as np
import pytest

from repro.api import Simulator, default_simulator
from repro.channels import MIMOArrayScenario, ScenarioSweep
from repro.core import CovarianceSpec, RayleighFadingGenerator
from repro.core.pipeline import generate_correlated_envelopes, generate_from_scenario
from repro.engine import BatchResult, DecompositionCache, SimulationPlan
from repro.exceptions import ParallelExecutionError, SpecificationError
from repro.parallel import run_plan_parallel


K2 = np.array([[1.0, 0.4 + 0.1j], [0.4 - 0.1j, 1.0]], dtype=complex)


def _plan(n_entries=5, seed=31, n_branches=3):
    rng = np.random.default_rng(seed)
    specs = []
    for _ in range(n_entries):
        basis = rng.normal(size=(n_branches, n_branches + 1)) + 1j * rng.normal(
            size=(n_branches, n_branches + 1)
        )
        specs.append(
            CovarianceSpec.from_covariance_matrix(basis @ basis.conj().T / (n_branches + 1))
        )
    return SimulationPlan.from_specs(specs, seed=seed)


class TestConstruction:
    def test_default_session_properties(self):
        sim = Simulator()
        assert sim.backend.name == "numpy"
        assert sim.max_workers is None
        assert sim.cache is default_simulator().cache  # both use the shared cache

    def test_invalid_max_workers_rejected(self):
        with pytest.raises(SpecificationError):
            Simulator(max_workers=0)

    def test_default_simulator_is_a_singleton(self):
        assert default_simulator() is default_simulator()

    def test_cache_stats_snapshot(self):
        sim = Simulator(cache=DecompositionCache())
        sim.run(_plan(2), 4)
        stats = sim.cache_stats
        assert stats.misses > 0

    def test_cache_dir_builds_persistent_session(self, tmp_path):
        with Simulator(cache_dir=tmp_path) as sim:
            assert sim.cache_dir == str(tmp_path)
            assert sim.cache is not default_simulator().cache
            reference = sim.run(_plan(2), 8)
        # A new session over the same directory loads the whole compiled
        # plan from disk — no per-matrix lookups at all — and reproduces
        # the run byte-for-byte.
        with Simulator(cache_dir=tmp_path) as warm:
            result = warm.run(_plan(2), 8)
            assert result.compile_report.plan_cache_hits == 1
            assert warm.engine.plan_cache.stats.hits == 1
            assert warm.cache_stats.lookups == 0  # decomposition tier untouched
        for block, expected in zip(result.blocks, reference.blocks):
            assert block.samples.tobytes() == expected.samples.tobytes()

    def test_cache_dir_conflicts_with_explicit_cache(self, tmp_path):
        with pytest.raises(SpecificationError):
            Simulator(cache=DecompositionCache(), cache_dir=tmp_path)

    def test_explicit_cache_with_disk_tier_reaches_workers(self, tmp_path):
        # The documented "mix" route: a hand-built persistent cache must
        # hand its directory to process-pool workers too.
        sim = Simulator(cache=DecompositionCache(cache_dir=tmp_path), max_workers=2)
        assert sim.cache_dir == str(tmp_path)
        # ... but NOT the compiled-plan tier: an explicitly hand-configured
        # cache keeps the plan tier detached in the parent, so workers must
        # keep it detached too (serial and parallel runs agree on whether
        # whole-plan short-circuits may happen).
        assert sim.engine.plan_cache.cache_dir is None
        assert sim._plan_cache_dir is None

    def test_worker_engine_mirrors_parent_plan_tier(self, tmp_path):
        # Exercise the worker entry point directly (no pool needed): the
        # plan tier attaches in the worker exactly when the parent forwards
        # its plan-cache directory.
        from repro.api import _run_subplan
        from repro.engine import resolve_backend

        backend = resolve_backend(None)
        _run_subplan(_plan(2), 8, backend, str(tmp_path / "a"), None)
        assert (tmp_path / "a" / "decompositions").is_dir()
        assert not (tmp_path / "a" / "plans").exists()

        _run_subplan(_plan(2), 8, backend, str(tmp_path / "b"), str(tmp_path / "b"))
        assert (tmp_path / "b" / "plans").is_dir()

    def test_explicit_memory_only_cache_overrides_env_for_workers(
        self, tmp_path, monkeypatch
    ):
        # An explicit cache opt-out must hold in workers even when
        # REPRO_CACHE_DIR is exported: parallel runs may not silently gain
        # a disk tier the caller disabled.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        sim = Simulator(cache=DecompositionCache(maxsize=0), max_workers=2)
        assert sim.cache_dir is None

    def test_default_session_forwards_env_dir_to_workers(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        sim = Simulator(max_workers=2)
        assert sim.cache_dir == str(tmp_path)


class TestEnvelopes:
    def test_matrix_bit_identical_to_classic_helper(self):
        via_session = Simulator().envelopes(K2, 256, seed=9)
        via_helper = generate_correlated_envelopes(K2, 256, rng=9)
        assert np.array_equal(via_session.envelopes, via_helper.envelopes)

    def test_bit_identical_to_standalone_generator(self):
        spec = CovarianceSpec.from_covariance_matrix(K2)
        block = Simulator().envelopes(spec, 128, seed=5, return_gaussian=True)
        reference = RayleighFadingGenerator(
            spec, rng=5, cache=DecompositionCache(maxsize=0)
        ).generate_gaussian(128)
        assert np.array_equal(block.samples, reference.samples)

    def test_envelope_powers_variant_matches_helper(self):
        matrix = np.array([[2.0, 0.5], [0.5, 3.0]], dtype=complex)
        via_session = Simulator().envelopes(matrix, 64, seed=2, envelope_powers=True)
        via_helper = generate_correlated_envelopes(matrix, 64, rng=2, envelope_powers=True)
        assert np.array_equal(via_session.envelopes, via_helper.envelopes)

    def test_doppler_mode_matches_helper(self):
        via_session = Simulator().envelopes(K2, 100, seed=3, normalized_doppler=0.05)
        via_helper = generate_correlated_envelopes(K2, 100, rng=3, normalized_doppler=0.05)
        assert np.array_equal(via_session.envelopes, via_helper.envelopes)

    def test_scenario_source_matches_helper(self):
        scenario = MIMOArrayScenario(
            n_antennas=3, spacing_wavelengths=0.5, angular_spread_rad=0.2
        )
        powers = [1.0, 1.0, 1.0]
        via_session = Simulator().envelopes(scenario, 64, seed=4, gaussian_powers=powers)
        via_helper = generate_from_scenario(scenario, powers, 64, rng=4)
        assert np.array_equal(via_session.envelopes, via_helper.envelopes)

    def test_scenario_requires_powers(self):
        scenario = MIMOArrayScenario(
            n_antennas=2, spacing_wavelengths=0.5, angular_spread_rad=0.2
        )
        with pytest.raises(SpecificationError, match="gaussian_powers"):
            Simulator().envelopes(scenario, 16)

    def test_invalid_sample_count_rejected(self):
        with pytest.raises(SpecificationError):
            Simulator().envelopes(K2, 0)


class TestRun:
    def test_run_matches_looped_generators(self):
        plan = _plan()
        result = Simulator(cache=DecompositionCache()).run(plan, 32)
        for entry, block in zip(plan, result.blocks):
            reference = RayleighFadingGenerator(
                entry.spec, rng=entry.seed, cache=DecompositionCache(maxsize=0)
            ).generate_gaussian(32)
            assert np.array_equal(reference.samples, block.samples)

    def test_run_accepts_compiled_plan(self):
        sim = Simulator(cache=DecompositionCache())
        plan = _plan(3)
        compiled = sim.compile(plan)
        assert np.array_equal(
            sim.run(compiled, 16).blocks[0].samples,
            sim.run(plan, 16).blocks[0].samples,
        )

    def test_run_accepts_scenario_sweep(self):
        sweep = ScenarioSweep.product(
            MIMOArrayScenario,
            n_antennas=[3],
            spacing_wavelengths=[0.5, 1.0],
            angular_spread_rad=[0.1, 0.2],
        )
        result = Simulator(cache=DecompositionCache()).run(
            sweep, 16, gaussian_powers=[1.0, 1.0, 1.0], seed=13
        )
        assert result.n_entries == len(sweep)
        labels = [block.metadata["label"] for block in result.blocks]
        assert labels == list(sweep.labels)
        # Equivalent to converting the sweep by hand.
        manual = Simulator(cache=DecompositionCache()).run(
            sweep.to_plan([1.0, 1.0, 1.0], seed=13), 16
        )
        for via_sweep, via_plan in zip(result.blocks, manual.blocks):
            assert np.array_equal(via_sweep.samples, via_plan.samples)

    def test_sweep_requires_powers(self):
        sweep = ScenarioSweep.product(
            MIMOArrayScenario,
            n_antennas=[2],
            spacing_wavelengths=[0.5],
            angular_spread_rad=[0.1],
        )
        with pytest.raises(SpecificationError, match="gaussian_powers"):
            Simulator().run(sweep, 8)

    def test_rejects_unrunnable_work(self):
        with pytest.raises(SpecificationError, match="SimulationPlan"):
            Simulator().run([np.eye(2)], 8)

    def test_parallel_run_bit_identical_to_in_process(self):
        plan = _plan(6)
        sequential = Simulator(cache=DecompositionCache()).run(plan, 24)
        parallel = Simulator(cache=DecompositionCache(), max_workers=2).run(plan, 24)
        assert isinstance(parallel, BatchResult)
        assert parallel.compile_report.n_entries == plan.n_entries
        for seq_block, par_block in zip(sequential.blocks, parallel.blocks):
            assert np.array_equal(seq_block.samples, par_block.samples)
        assert [b.metadata["plan_index"] for b in parallel.blocks] == list(range(6))

    def test_parallel_run_with_unregistered_backend_instance(self):
        # The instance itself travels to the workers; no registry lookup.
        from repro.engine import ScipyBackend

        backend = ScipyBackend(driver="evd")
        plan = _plan(4)
        parallel = Simulator(
            cache=DecompositionCache(), backend=backend, max_workers=2
        ).run(plan, 12)
        sequential = Simulator(cache=DecompositionCache(), backend=backend).run(plan, 12)
        for par_block, seq_block in zip(parallel.blocks, sequential.blocks):
            assert np.array_equal(par_block.samples, seq_block.samples)
        assert parallel.backend == "scipy"

    def test_sweep_accepts_2d_array_of_per_scenario_powers(self):
        sweep = ScenarioSweep.product(
            MIMOArrayScenario,
            n_antennas=[2],
            spacing_wavelengths=[0.5, 1.0],
            angular_spread_rad=[0.1],
        )
        powers = np.array([[1.0, 2.0], [3.0, 4.0]])
        via_array = Simulator(cache=DecompositionCache()).run(
            sweep, 8, gaussian_powers=powers, seed=21
        )
        via_list = Simulator(cache=DecompositionCache()).run(
            sweep, 8, gaussian_powers=[powers[0], powers[1]], seed=21
        )
        for a, b in zip(via_array.blocks, via_list.blocks):
            assert np.array_equal(a.samples, b.samples)

    def test_single_entry_plan_stays_in_process(self):
        # No pool spin-up for B=1; result identical either way.
        plan = _plan(1)
        a = Simulator(cache=DecompositionCache(), max_workers=4).run(plan, 8)
        b = Simulator(cache=DecompositionCache()).run(plan, 8)
        assert np.array_equal(a.blocks[0].samples, b.blocks[0].samples)

    def test_summary_reports_cache_counters(self):
        sim = Simulator(cache=DecompositionCache())
        sim.run(_plan(3), 8)
        summary = sim.run(_plan(3), 8).summary()
        assert "decomposition cache" in summary
        assert "3 hits" in summary
        assert "hit rate" in summary
        assert "backend=numpy" in summary


class TestStream:
    def test_stream_matches_engine_stream(self):
        plan = _plan(3)
        sim = Simulator(cache=DecompositionCache())
        streamed = list(sim.stream(plan, block_size=7, n_blocks=3))
        assert len(streamed) == 3
        reference = list(
            Simulator(cache=DecompositionCache()).engine.stream(
                plan, block_size=7, n_blocks=3
            )
        )
        for batch, ref_batch in zip(streamed, reference):
            for block, ref_block in zip(batch.blocks, ref_batch.blocks):
                assert np.array_equal(block.samples, ref_block.samples)


class TestSubmit:
    def test_gather_over_four_submits_matches_sync_run(self):
        sim = Simulator(cache=DecompositionCache(), max_workers=4)
        plans = [_plan(3, seed=seed) for seed in (1, 2, 3, 4, 5)]

        async def gather():
            return await asyncio.gather(
                *(sim.submit(plan, 20) for plan in plans)
            )

        results = asyncio.run(gather())
        assert len(results) == 5
        for plan, result in zip(plans, results):
            sync = Simulator(cache=DecompositionCache()).run(plan, 20)
            for got, expected in zip(result.blocks, sync.blocks):
                assert np.array_equal(got.samples, expected.samples)
        sim.close()

    def test_submit_accepts_sweeps(self):
        sweep = ScenarioSweep.product(
            MIMOArrayScenario,
            n_antennas=[2],
            spacing_wavelengths=[0.5, 1.0],
            angular_spread_rad=[0.1],
        )

        async def one():
            with Simulator(cache=DecompositionCache()) as sim:
                return await sim.submit(sweep, 8, gaussian_powers=[1.0, 1.0], seed=2)

        result = asyncio.run(one())
        assert result.n_entries == 2

    def test_closed_session_rejects_submit(self):
        sim = Simulator()
        sim.close()

        async def attempt():
            return await sim.submit(_plan(1), 4)

        with pytest.raises(ParallelExecutionError, match="closed"):
            asyncio.run(attempt())

    def test_close_is_idempotent_and_run_survives(self):
        sim = Simulator(cache=DecompositionCache())
        sim.close()
        sim.close()
        assert sim.run(_plan(1), 4).n_entries == 1

    def test_pending_submissions_tracks_lifecycle(self):
        sim = Simulator(cache=DecompositionCache(), max_workers=2)
        assert sim.pending_submissions == 0

        async def one():
            return await sim.submit(_plan(2, seed=3), 16)

        result = asyncio.run(one())
        assert result.n_entries == 2
        assert sim.pending_submissions == 0
        sim.close()

    def test_cancelled_submit_releases_pool_slot(self):
        """Regression: cancelling the awaitable must not orphan the work.

        With a single pool thread deliberately occupied, the submitted call
        has not started yet; cancelling the asyncio side must propagate to
        the pool future, drop the pending-submission count back to zero,
        and the cancelled work must never run.
        """
        import threading

        from conftest import FlakyBackend

        backend = FlakyBackend(fail_at=0)  # fail_at=0 never fires: pure counter
        sim = Simulator(backend=backend, cache=DecompositionCache(), max_workers=1)
        gate = threading.Event()
        release = threading.Event()

        async def scenario():
            # Occupy the only pool thread so the next submit stays pending.
            blocker = sim._executor().submit(
                lambda: (gate.set(), release.wait(5))
            )
            await asyncio.to_thread(gate.wait, 5)
            task = asyncio.ensure_future(sim.submit(_plan(1, seed=9), 64))
            await asyncio.sleep(0)
            assert sim.pending_submissions == 1
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            # The done-callback may land a beat after the cancellation.
            for _ in range(200):
                if sim.pending_submissions == 0:
                    break
                await asyncio.sleep(0.01)
            assert sim.pending_submissions == 0
            release.set()
            blocker.result(timeout=5)

        asyncio.run(scenario())
        # The cancelled compile never reached the backend.
        assert backend.eigh_calls == 0
        sim.close()


class TestRunPlanParallelWrapper:
    def test_wrapper_matches_session(self):
        plan = _plan(4)
        blocks = run_plan_parallel(plan, 16, n_workers=2)
        session = Simulator(cache=DecompositionCache()).run(plan, 16)
        for block, expected in zip(blocks, session.blocks):
            assert np.array_equal(block.samples, expected.samples)

    def test_wrapper_accepts_backend(self):
        plan = _plan(3)
        blocks = run_plan_parallel(plan, 8, backend="scipy")
        reference = run_plan_parallel(plan, 8)
        for block, expected in zip(blocks, reference):
            assert np.array_equal(block.samples, expected.samples)
