"""Tests of the public package surface: exports, version, module entry point."""

import subprocess
import sys

import pytest

import repro


class TestPublicExports:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize("name", repro.__all__)
    def test_every_advertised_name_is_importable(self, name):
        assert hasattr(repro, name), f"repro.__all__ lists {name} but it is missing"

    def test_key_classes_exported(self):
        for name in (
            "CovarianceSpec",
            "RayleighFadingGenerator",
            "RealTimeRayleighGenerator",
            "RicianFadingGenerator",
            "IDFTRayleighGenerator",
            "SumOfSinusoidsGenerator",
            "OFDMScenario",
            "MIMOArrayScenario",
        ):
            assert name in repro.__all__

    def test_exceptions_exported(self):
        assert issubclass(repro.CholeskyError, repro.ReproError)
        assert issubclass(repro.SpecificationError, repro.ReproError)

    def test_subpackages_importable(self):
        import repro.baselines
        import repro.channels
        import repro.core
        import repro.experiments
        import repro.linalg
        import repro.parallel
        import repro.random
        import repro.signal
        import repro.validation

        assert repro.core.__doc__ and repro.channels.__doc__

    def test_every_public_module_has_a_docstring(self):
        import importlib
        import pkgutil

        missing = []
        for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            module = importlib.import_module(module_info.name)
            if not module.__doc__:
                missing.append(module_info.name)
        assert not missing, f"modules without docstrings: {missing}"


class TestModuleEntryPoint:
    def test_python_dash_m_repro_list(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0
        assert "eq22-spectral-covariance" in completed.stdout
        assert "fig4b-spatial-envelopes" in completed.stdout
