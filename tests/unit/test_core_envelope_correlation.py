"""Unit tests for the envelope-correlation <-> Gaussian-correlation mapping."""

import numpy as np
import pytest

from repro.core import (
    CovarianceSpec,
    RayleighFadingGenerator,
    envelope_correlation_approximation,
    envelope_correlation_from_gaussian,
    gaussian_correlation_from_envelope,
    gaussian_correlation_matrix_from_envelope,
)
from repro.exceptions import SpecificationError
from repro.validation import empirical_envelope_correlation


class TestForwardMap:
    def test_zero_correlation_maps_to_zero(self):
        assert envelope_correlation_from_gaussian(0.0) == pytest.approx(0.0)

    def test_full_correlation_maps_to_one(self):
        assert envelope_correlation_from_gaussian(1.0) == pytest.approx(1.0, abs=1e-10)

    def test_monotonically_increasing(self):
        values = envelope_correlation_from_gaussian(np.linspace(0.0, 1.0, 50))
        assert np.all(np.diff(values) > 0)

    def test_close_to_square_approximation(self):
        magnitudes = np.linspace(0.0, 1.0, 21)
        exact = envelope_correlation_from_gaussian(magnitudes)
        approx = envelope_correlation_approximation(magnitudes)
        assert np.max(np.abs(exact - approx)) < 0.03

    def test_exact_is_below_approximation_in_the_interior(self):
        # The hypergeometric map lies slightly below |rho|^2 for 0 < |rho| < 1
        # (at |rho| = 0.5 the exact envelope correlation is ~0.233).
        assert envelope_correlation_from_gaussian(0.5) < 0.25
        assert envelope_correlation_from_gaussian(0.5) == pytest.approx(0.2326, abs=5e-4)

    def test_complex_input_uses_magnitude(self):
        assert envelope_correlation_from_gaussian(0.6j) == pytest.approx(
            float(envelope_correlation_from_gaussian(0.6))
        )

    def test_out_of_range_rejected(self):
        with pytest.raises(SpecificationError):
            envelope_correlation_from_gaussian(1.5)

    def test_matches_monte_carlo(self):
        # Generate two correlated branches and compare the measured envelope
        # correlation with the exact map.
        rho = 0.7
        covariance = np.array([[1.0, rho], [rho, 1.0]], dtype=complex)
        generator = RayleighFadingGenerator(covariance, rng=0)
        envelopes = np.abs(generator.generate(400_000))
        measured = empirical_envelope_correlation(envelopes)[0, 1]
        predicted = float(envelope_correlation_from_gaussian(rho))
        assert measured == pytest.approx(predicted, abs=0.01)


class TestInverseMap:
    def test_round_trip_exact(self):
        for rho_g in (0.0, 0.2, 0.5, 0.8, 0.95):
            rho_r = float(envelope_correlation_from_gaussian(rho_g))
            recovered = float(gaussian_correlation_from_envelope(rho_r))
            assert recovered == pytest.approx(rho_g, abs=1e-6)

    def test_approximate_inverse_is_sqrt(self):
        assert gaussian_correlation_from_envelope(0.25, exact=False) == pytest.approx(0.5)

    def test_vector_input(self):
        result = gaussian_correlation_from_envelope(np.array([0.1, 0.4]))
        assert result.shape == (2,)
        assert np.all(np.diff(result) > 0)

    def test_rejects_one(self):
        with pytest.raises(SpecificationError):
            gaussian_correlation_from_envelope(1.0)


class TestMatrixConversion:
    def test_produces_unit_diagonal_symmetric_matrix(self):
        envelope_matrix = np.array(
            [[1.0, 0.5, 0.2], [0.5, 1.0, 0.5], [0.2, 0.5, 1.0]]
        )
        gaussian_matrix = gaussian_correlation_matrix_from_envelope(envelope_matrix)
        assert np.allclose(np.diag(gaussian_matrix), 1.0)
        assert np.allclose(gaussian_matrix, gaussian_matrix.T)
        assert np.all(gaussian_matrix >= 0)

    def test_end_to_end_with_covariance_spec(self):
        # Ask for envelope variances + envelope correlations, generate, and
        # confirm the measured envelope correlation matches the request.
        envelope_matrix = np.array([[1.0, 0.4], [0.4, 1.0]])
        gaussian_matrix = gaussian_correlation_matrix_from_envelope(envelope_matrix)
        spec = CovarianceSpec.from_envelope_variances(
            np.array([1.0, 1.0]), gaussian_matrix.astype(complex)
        )
        generator = RayleighFadingGenerator(spec, rng=1)
        envelopes = np.abs(generator.generate(400_000))
        measured = empirical_envelope_correlation(envelopes)[0, 1]
        assert measured == pytest.approx(0.4, abs=0.01)

    def test_rejects_non_unit_diagonal(self):
        with pytest.raises(SpecificationError):
            gaussian_correlation_matrix_from_envelope(np.array([[2.0, 0.1], [0.1, 2.0]]))

    def test_rejects_out_of_range_entries(self):
        with pytest.raises(SpecificationError):
            gaussian_correlation_matrix_from_envelope(np.array([[1.0, 1.2], [1.2, 1.0]]))
