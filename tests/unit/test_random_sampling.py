"""Unit tests for complex Gaussian and Rayleigh sampling."""

import numpy as np
import pytest

from repro.exceptions import PowerError
from repro.random import (
    complex_gaussian,
    complex_gaussian_pair,
    rayleigh_from_gaussian,
    rayleigh_samples,
    standard_complex_gaussian,
)


class TestComplexGaussian:
    def test_shape_scalar(self):
        assert complex_gaussian(10, rng=0).shape == (10,)

    def test_shape_tuple(self):
        assert complex_gaussian((3, 5), rng=0).shape == (3, 5)

    def test_is_complex(self):
        assert np.iscomplexobj(complex_gaussian(4, rng=0))

    def test_total_variance_matches_request(self):
        samples = complex_gaussian(200_000, variance=3.0, rng=1)
        assert np.mean(np.abs(samples) ** 2) == pytest.approx(3.0, rel=0.02)

    def test_variance_split_between_dimensions(self):
        samples = complex_gaussian(200_000, variance=2.0, rng=2)
        assert np.var(samples.real) == pytest.approx(1.0, rel=0.02)
        assert np.var(samples.imag) == pytest.approx(1.0, rel=0.02)

    def test_zero_mean(self):
        samples = complex_gaussian(200_000, rng=3)
        assert abs(np.mean(samples)) < 0.01

    def test_real_imag_uncorrelated(self):
        samples = complex_gaussian(200_000, rng=4)
        corr = np.corrcoef(samples.real, samples.imag)[0, 1]
        assert abs(corr) < 0.01

    def test_reproducible(self):
        assert np.allclose(complex_gaussian(8, rng=5), complex_gaussian(8, rng=5))

    @pytest.mark.parametrize("variance", [0.0, -1.0, np.nan, np.inf])
    def test_invalid_variance_raises(self, variance):
        with pytest.raises(PowerError):
            complex_gaussian(4, variance=variance, rng=0)

    def test_standard_has_unit_variance(self):
        samples = standard_complex_gaussian(100_000, rng=6)
        assert np.mean(np.abs(samples) ** 2) == pytest.approx(1.0, rel=0.02)


class TestComplexGaussianPair:
    def test_returns_two_real_arrays(self):
        a, b = complex_gaussian_pair(16, rng=0)
        assert a.shape == (16,) and b.shape == (16,)
        assert not np.iscomplexobj(a) and not np.iscomplexobj(b)

    def test_per_dimension_variance(self):
        a, b = complex_gaussian_pair(200_000, variance_per_dimension=0.5, rng=1)
        assert np.var(a) == pytest.approx(0.5, rel=0.02)
        assert np.var(b) == pytest.approx(0.5, rel=0.02)

    def test_sequences_are_independent(self):
        a, b = complex_gaussian_pair(200_000, rng=2)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.01

    def test_invalid_variance_raises(self):
        with pytest.raises(PowerError):
            complex_gaussian_pair(4, variance_per_dimension=-0.5, rng=0)


class TestRayleigh:
    def test_samples_non_negative(self):
        assert np.all(rayleigh_samples(1000, rng=0) >= 0)

    def test_mean_matches_eq14(self):
        # E{r} = sigma_g * sqrt(pi)/2 for gaussian power sigma_g^2.
        samples = rayleigh_samples(400_000, gaussian_variance=4.0, rng=1)
        assert np.mean(samples) == pytest.approx(2.0 * np.sqrt(np.pi) / 2.0, rel=0.01)

    def test_variance_matches_eq15(self):
        samples = rayleigh_samples(400_000, gaussian_variance=4.0, rng=2)
        assert np.var(samples) == pytest.approx(4.0 * (1 - np.pi / 4), rel=0.02)

    def test_second_moment_is_gaussian_power(self):
        samples = rayleigh_samples(400_000, gaussian_variance=2.5, rng=3)
        assert np.mean(samples**2) == pytest.approx(2.5, rel=0.01)

    def test_invalid_power_raises(self):
        with pytest.raises(PowerError):
            rayleigh_samples(10, gaussian_variance=0.0, rng=0)

    def test_rayleigh_from_gaussian_is_abs(self):
        z = np.array([3 + 4j, -1 + 0j])
        assert np.allclose(rayleigh_from_gaussian(z), [5.0, 1.0])
