"""Unit tests for plan compilation and execution (grouping, caching, streaming)."""

import numpy as np
import pytest

from repro.channels.doppler import filter_output_variance, young_beaulieu_filter
from repro.core import CovarianceSpec
from repro.engine import (
    DecompositionCache,
    DopplerSpec,
    SimulationEngine,
    SimulationPlan,
    compile_plan,
    default_engine,
    execute_plan,
    stream_plan,
)
from repro.exceptions import DimensionError, GenerationError
from repro.parallel import run_plan_parallel
from repro.exceptions import ParallelExecutionError


def _matrix(power, size=2):
    base = np.full((size, size), 0.3, dtype=complex)
    np.fill_diagonal(base, 1.0)
    return power * base


@pytest.fixture()
def mixed_plan():
    """Entries with two shapes and one repeated matrix."""
    plan = SimulationPlan()
    plan.add(_matrix(1.0), seed=1)
    plan.add(_matrix(2.0), seed=2)
    plan.add(_matrix(1.0, size=3), seed=3)
    plan.add(_matrix(1.0), seed=4)  # duplicate of entry 0, different seed
    return plan


class TestCompile:
    def test_groups_by_shape(self, mixed_plan):
        compiled = compile_plan(mixed_plan, cache=DecompositionCache())
        assert compiled.report.n_groups == 2
        assert compiled.report.n_entries == 4
        sizes = sorted(group.batch_size for group in compiled.groups)
        assert sizes == [1, 3]

    def test_intra_batch_deduplication(self, mixed_plan):
        compiled = compile_plan(mixed_plan, cache=DecompositionCache())
        # Entries 0 and 3 share a matrix: 3 unique decompositions for 4 entries.
        assert compiled.report.n_unique_matrices == 3
        assert compiled.report.deduplicated == 1
        assert compiled.decomposition_for(0) is compiled.decomposition_for(3)

    def test_cache_hits_across_compiles(self, mixed_plan):
        cache = DecompositionCache()
        first = compile_plan(mixed_plan, cache=cache)
        second = compile_plan(mixed_plan, cache=cache)
        assert first.report.cache_misses == 3
        assert first.report.cache_hits == 0
        assert second.report.cache_hits == 3
        assert second.report.cache_misses == 0

    def test_coloring_stack_shape(self, mixed_plan):
        compiled = compile_plan(mixed_plan, cache=DecompositionCache())
        for group in compiled.groups:
            assert group.coloring_stack.shape == (
                group.batch_size,
                group.n_branches,
                group.n_branches,
            )

    def test_decomposition_for_unknown_index(self, mixed_plan):
        compiled = compile_plan(mixed_plan, cache=DecompositionCache())
        with pytest.raises(IndexError):
            compiled.decomposition_for(99)


class TestCompileDoppler:
    @pytest.fixture()
    def doppler_plan(self):
        """Two Doppler groups sharing one filter build, plus a snapshot entry."""
        doppler = DopplerSpec(normalized_doppler=0.05, n_points=64)
        plan = SimulationPlan()
        plan.add(_matrix(1.0), seed=1, doppler=doppler)
        plan.add(_matrix(2.0), seed=2, doppler=doppler)
        plan.add(_matrix(1.0, size=3), seed=3, doppler=doppler)  # other N, same filter
        plan.add(_matrix(1.0), seed=4)  # snapshot
        return plan

    def test_doppler_groups_carry_shared_filter(self, doppler_plan):
        compiled = compile_plan(doppler_plan, cache=DecompositionCache())
        doppler_groups = [group for group in compiled.groups if group.is_doppler]
        assert len(doppler_groups) == 2  # N = 2 and N = 3 stack separately
        expected = young_beaulieu_filter(64, 0.05)
        for group in doppler_groups:
            assert np.array_equal(group.doppler_filter, expected)
        # Same (M, f_m, sigma_orig^2): the filter is literally shared.
        assert doppler_groups[0].doppler_filter is doppler_groups[1].doppler_filter

    def test_filter_reuse_counters(self, doppler_plan):
        compiled = compile_plan(doppler_plan, cache=DecompositionCache())
        assert compiled.report.doppler_filters_built == 1
        assert compiled.report.doppler_entries == 3

    def test_snapshot_only_plan_reports_zero_doppler_work(self, mixed_plan):
        compiled = compile_plan(mixed_plan, cache=DecompositionCache())
        assert compiled.report.doppler_filters_built == 0
        assert compiled.report.doppler_entries == 0

    def test_distinct_filter_keys_build_distinct_filters(self):
        plan = SimulationPlan()
        plan.add(_matrix(1.0), seed=1, doppler=DopplerSpec(0.05, 64))
        plan.add(_matrix(2.0), seed=2, doppler=DopplerSpec(0.1, 64))
        plan.add(_matrix(3.0), seed=3, doppler=DopplerSpec(0.05, 128))
        compiled = compile_plan(plan, cache=DecompositionCache())
        assert compiled.report.doppler_filters_built == 3
        assert compiled.report.doppler_entries == 3

    def test_effective_variances_apply_eq19_compensation(self):
        plan = SimulationPlan()
        plan.add(_matrix(1.0), seed=1, doppler=DopplerSpec(0.05, 64))
        plan.add(
            _matrix(2.0), seed=2, doppler=DopplerSpec(0.05, 64, compensate_variance=False)
        )
        compiled = compile_plan(plan, cache=DecompositionCache())
        (group,) = compiled.groups
        expected = filter_output_variance(young_beaulieu_filter(64, 0.05), 0.5)
        assert group.doppler_output_variance == pytest.approx(expected)
        assert group.sample_variances[0] == pytest.approx(expected)
        assert group.sample_variances[1] == 1.0

    def test_summary_reports_filter_reuse(self, doppler_plan):
        engine = SimulationEngine(cache=DecompositionCache())
        summary = engine.run(doppler_plan, 8).summary()
        assert "doppler filters: 1 built / 3 entries served" in summary

    def test_snapshot_summary_omits_doppler_line(self, mixed_plan):
        engine = SimulationEngine(cache=DecompositionCache())
        summary = engine.run(mixed_plan, 8).summary()
        assert "doppler filters" not in summary


class TestExecute:
    def test_blocks_in_plan_order(self, mixed_plan):
        compiled = compile_plan(mixed_plan, cache=DecompositionCache())
        result = execute_plan(compiled, 10)
        assert result.n_entries == 4
        assert [block.metadata["plan_index"] for block in result.blocks] == [0, 1, 2, 3]
        assert result.blocks[2].samples.shape == (3, 10)

    def test_metadata_fields(self, mixed_plan):
        result = default_engine().run(mixed_plan, 5)
        block = result.blocks[0]
        assert block.metadata["method"] == "snapshot"
        assert block.metadata["engine"] == "batch"
        assert block.metadata["coloring_method"] == "eigen"

    def test_rejects_bad_sample_count(self, mixed_plan):
        compiled = compile_plan(mixed_plan, cache=DecompositionCache())
        with pytest.raises(GenerationError):
            execute_plan(compiled, 0)

    def test_stacked_samples_requires_homogeneous_plan(self, mixed_plan):
        result = default_engine().run(mixed_plan, 4)
        with pytest.raises(DimensionError):
            result.stacked_samples()

    def test_stacked_samples_on_homogeneous_plan(self):
        plan = SimulationPlan.from_specs([_matrix(1.0), _matrix(2.0)], seed=0)
        result = default_engine().run(plan, 6)
        assert result.stacked_samples().shape == (2, 2, 6)

    def test_envelopes(self, mixed_plan):
        result = default_engine().run(mixed_plan, 4)
        envelopes = result.envelopes()
        assert len(envelopes) == 4
        assert np.all(envelopes[0].envelopes >= 0)


class TestStreaming:
    def test_block_count_and_shape(self, mixed_plan):
        compiled = compile_plan(mixed_plan, cache=DecompositionCache())
        batches = list(stream_plan(compiled, block_size=8, n_blocks=3))
        assert len(batches) == 3
        assert all(batch.blocks[0].samples.shape == (2, 8) for batch in batches)

    def test_blocks_advance_the_stream(self, mixed_plan):
        compiled = compile_plan(mixed_plan, cache=DecompositionCache())
        batches = list(stream_plan(compiled, block_size=8, n_blocks=2))
        assert not np.array_equal(
            batches[0].blocks[0].samples, batches[1].blocks[0].samples
        )

    def test_rejects_bad_parameters(self, mixed_plan):
        compiled = compile_plan(mixed_plan, cache=DecompositionCache())
        with pytest.raises(GenerationError):
            list(stream_plan(compiled, block_size=0, n_blocks=1))
        with pytest.raises(GenerationError):
            list(stream_plan(compiled, block_size=1, n_blocks=0))


class TestEngineFacade:
    def test_run_accepts_compiled_plans(self, mixed_plan):
        engine = SimulationEngine(cache=DecompositionCache())
        compiled = engine.compile(mixed_plan)
        a = engine.run(compiled, 4)
        b = engine.run(mixed_plan, 4)
        for block_a, block_b in zip(a.blocks, b.blocks):
            assert np.array_equal(block_a.samples, block_b.samples)

    def test_default_engine_is_singleton(self):
        assert default_engine() is default_engine()

    def test_cache_stats_exposed(self, mixed_plan):
        engine = SimulationEngine(cache=DecompositionCache())
        engine.run(mixed_plan, 2)
        assert engine.cache_stats.misses == 3


class TestPlanParallel:
    def test_serial_equals_parallel(self, mixed_plan):
        serial = run_plan_parallel(mixed_plan, 16, n_workers=1)
        parallel = run_plan_parallel(mixed_plan, 16, n_workers=2)
        assert len(serial) == len(parallel) == 4
        for a, b in zip(serial, parallel):
            assert np.array_equal(a.samples, b.samples)

    def test_rejects_empty_plan(self):
        with pytest.raises(ParallelExecutionError):
            run_plan_parallel(SimulationPlan(), 4)

    def test_rejects_non_plan(self):
        with pytest.raises(ParallelExecutionError):
            run_plan_parallel([np.eye(2)], 4)

    def test_rejects_bad_sample_count(self, mixed_plan):
        with pytest.raises(ParallelExecutionError):
            run_plan_parallel(mixed_plan, 0)
