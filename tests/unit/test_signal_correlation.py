"""Unit tests for repro.signal.correlation."""

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.signal import (
    autocorrelation,
    complex_autocovariance,
    cross_correlation,
    normalized_autocorrelation,
)


class TestAutocorrelation:
    def test_lag_zero_is_power(self):
        x = np.array([1.0, -1.0, 1.0, -1.0])
        acf = autocorrelation(x, max_lag=0)
        assert acf[0] == pytest.approx(1.0)

    def test_alternating_sequence_lag_one_negative(self):
        x = np.array([1.0, -1.0] * 50)
        acf = autocorrelation(x, max_lag=1)
        assert acf[1] < 0

    def test_white_noise_decorrelates(self, rng):
        x = rng.normal(size=100_000)
        acf = normalized_autocorrelation(x, max_lag=5)
        assert acf[0] == pytest.approx(1.0)
        assert np.all(np.abs(acf[1:]) < 0.02)

    def test_biased_vs_unbiased_scaling(self):
        x = np.arange(1.0, 9.0)
        biased = autocorrelation(x, max_lag=3)
        unbiased = autocorrelation(x, max_lag=3, unbiased=True)
        n = len(x)
        for d in range(1, 4):
            assert unbiased[d] == pytest.approx(biased[d] * n / (n - d))

    def test_matches_direct_computation(self, rng):
        x = rng.normal(size=64) + 1j * rng.normal(size=64)
        acf = autocorrelation(x, max_lag=5)
        for d in range(6):
            direct = np.sum(x[d:] * np.conj(x[: len(x) - d])) / len(x)
            assert acf[d] == pytest.approx(direct, abs=1e-10)

    def test_real_input_gives_real_output(self, rng):
        acf = autocorrelation(rng.normal(size=128), max_lag=4)
        assert not np.iscomplexobj(acf)

    def test_default_max_lag(self, rng):
        x = rng.normal(size=32)
        assert autocorrelation(x).shape == (32,)

    def test_invalid_max_lag(self, rng):
        with pytest.raises(ValueError):
            autocorrelation(rng.normal(size=8), max_lag=8)

    def test_rejects_2d(self):
        with pytest.raises(DimensionError):
            autocorrelation(np.ones((2, 4)))

    def test_normalized_rejects_zero_sequence(self):
        with pytest.raises(ValueError):
            normalized_autocorrelation(np.zeros(16))


class TestCrossCorrelation:
    def test_identical_sequences_match_autocorrelation(self, rng):
        x = rng.normal(size=256)
        assert cross_correlation(x, x, max_lag=3) == pytest.approx(
            autocorrelation(x, max_lag=3), abs=1e-12
        )

    def test_independent_sequences_are_uncorrelated(self, rng):
        x = rng.normal(size=100_000)
        y = rng.normal(size=100_000)
        assert abs(cross_correlation(x, y, max_lag=0)[0]) < 0.02

    def test_length_mismatch_raises(self):
        with pytest.raises(DimensionError):
            cross_correlation(np.ones(4), np.ones(5))

    def test_complex_inputs_give_complex_output(self, rng):
        x = rng.normal(size=64) + 1j * rng.normal(size=64)
        y = rng.normal(size=64) + 1j * rng.normal(size=64)
        assert np.iscomplexobj(cross_correlation(x, y, max_lag=2))


class TestComplexAutocovariance:
    def test_shape(self, rng):
        samples = rng.normal(size=(3, 1000)) + 1j * rng.normal(size=(3, 1000))
        assert complex_autocovariance(samples).shape == (3, 3)

    def test_hermitian(self, rng):
        samples = rng.normal(size=(3, 1000)) + 1j * rng.normal(size=(3, 1000))
        cov = complex_autocovariance(samples)
        assert np.allclose(cov, cov.conj().T)

    def test_diagonal_is_power(self, rng):
        samples = 2.0 * (rng.normal(size=(2, 200_000)) + 1j * rng.normal(size=(2, 200_000)))
        cov = complex_autocovariance(samples)
        assert np.real(cov[0, 0]) == pytest.approx(8.0, rel=0.02)

    def test_1d_input_promoted(self, rng):
        samples = rng.normal(size=512) + 1j * rng.normal(size=512)
        assert complex_autocovariance(samples).shape == (1, 1)

    def test_empty_raises(self):
        with pytest.raises(DimensionError):
            complex_autocovariance(np.empty((2, 0)))
