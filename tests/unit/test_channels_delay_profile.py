"""Unit tests for power delay profiles and frequency-correlation quantities."""

import numpy as np
import pytest

from repro.channels import (
    PowerDelayProfile,
    coherence_bandwidth,
    exponential_power_delay_profile,
)
from repro.exceptions import SpecificationError


class TestPowerDelayProfile:
    def test_single_tap_has_zero_delay_spread(self):
        profile = PowerDelayProfile(delays_s=np.array([1e-6]), powers=np.array([2.0]))
        assert profile.rms_delay_spread() == 0.0
        assert profile.mean_excess_delay() == pytest.approx(1e-6)

    def test_two_equal_taps(self):
        # Two equal-power taps at 0 and T: mean T/2, rms spread T/2.
        t = 2e-6
        profile = PowerDelayProfile(delays_s=np.array([0.0, t]), powers=np.array([1.0, 1.0]))
        assert profile.mean_excess_delay() == pytest.approx(t / 2)
        assert profile.rms_delay_spread() == pytest.approx(t / 2)

    def test_power_normalization(self):
        profile = PowerDelayProfile(
            delays_s=np.array([0.0, 1e-6]), powers=np.array([3.0, 1.0])
        )
        assert profile.total_power() == pytest.approx(4.0)
        assert np.allclose(profile.normalized_powers(), [0.75, 0.25])

    def test_frequency_correlation_at_zero_is_one(self):
        profile = exponential_power_delay_profile(1e-6)
        assert profile.frequency_correlation_magnitude(np.array([0.0]))[0] == pytest.approx(1.0)

    def test_frequency_correlation_decays(self):
        profile = exponential_power_delay_profile(1e-6)
        separations = np.array([0.0, 50e3, 200e3, 1e6])
        magnitudes = profile.frequency_correlation_magnitude(separations)
        assert np.all(np.diff(magnitudes) < 0)

    def test_validation_errors(self):
        with pytest.raises(SpecificationError):
            PowerDelayProfile(delays_s=np.array([0.0, 1.0]), powers=np.array([1.0]))
        with pytest.raises(SpecificationError):
            PowerDelayProfile(delays_s=np.array([1.0, 0.5]), powers=np.array([1.0, 1.0]))
        with pytest.raises(SpecificationError):
            PowerDelayProfile(delays_s=np.array([0.0]), powers=np.array([0.0]))
        with pytest.raises(SpecificationError):
            PowerDelayProfile(delays_s=np.array([-1.0]), powers=np.array([1.0]))


class TestExponentialProfile:
    def test_rms_delay_spread_close_to_target(self):
        target = 1e-6
        profile = exponential_power_delay_profile(target, n_taps=512, max_delay_factor=20.0)
        assert profile.rms_delay_spread() == pytest.approx(target, rel=0.02)

    def test_lorentzian_frequency_correlation(self):
        # |R(df)|^2 should approximate 1 / (1 + (2 pi df sigma)^2), the factor
        # in the paper's Eq. (3).
        sigma = 1e-6
        profile = exponential_power_delay_profile(sigma, n_taps=2048, max_delay_factor=30.0)
        separations = np.array([50e3, 100e3, 200e3, 400e3])
        measured = profile.frequency_correlation_magnitude(separations) ** 2
        expected = 1.0 / (1.0 + (2 * np.pi * separations * sigma) ** 2)
        assert np.allclose(measured, expected, rtol=0.05)

    def test_invalid_parameters(self):
        with pytest.raises(SpecificationError):
            exponential_power_delay_profile(0.0)
        with pytest.raises(SpecificationError):
            exponential_power_delay_profile(1e-6, n_taps=1)
        with pytest.raises(SpecificationError):
            exponential_power_delay_profile(1e-6, max_delay_factor=0.0)


class TestCoherenceBandwidth:
    def test_rule_of_thumb_value(self):
        profile = exponential_power_delay_profile(1e-6, n_taps=512, max_delay_factor=20.0)
        rule, exact = coherence_bandwidth(profile)
        assert rule == pytest.approx(1.0 / (2 * np.pi * profile.rms_delay_spread()), rel=1e-6)
        assert exact > 0

    def test_exact_value_crosses_the_level(self):
        profile = exponential_power_delay_profile(1e-6, n_taps=1024, max_delay_factor=25.0)
        _, exact = coherence_bandwidth(profile, correlation_level=0.5)
        just_below = profile.frequency_correlation_magnitude(np.array([exact * 1.05]))[0]
        just_above = profile.frequency_correlation_magnitude(np.array([exact * 0.95]))[0]
        assert just_below < 0.5 < just_above

    def test_larger_delay_spread_smaller_coherence_bandwidth(self):
        narrow = exponential_power_delay_profile(0.5e-6)
        wide = exponential_power_delay_profile(2e-6)
        assert coherence_bandwidth(narrow)[1] > coherence_bandwidth(wide)[1]

    def test_single_tap_profile_is_fully_coherent(self):
        profile = PowerDelayProfile(delays_s=np.array([1e-6]), powers=np.array([1.0]))
        rule, exact = coherence_bandwidth(profile)
        assert rule == float("inf")
        assert exact == float("inf")

    def test_invalid_level(self):
        profile = exponential_power_delay_profile(1e-6)
        with pytest.raises(SpecificationError):
            coherence_bandwidth(profile, correlation_level=1.5)
