"""Unit tests for the closed-form Doppler IDFT block-size computation."""

import numpy as np
import pytest

from repro.core.pipeline import doppler_block_size, generate_correlated_envelopes
from repro.exceptions import SpecificationError


def _reference_loop(n_samples, normalized_doppler):
    """The historical doubling search the closed form replaced."""
    n_points = 64
    while n_points < n_samples or int(np.floor(normalized_doppler * n_points)) < 1:
        n_points *= 2
    return n_points


class TestDopplerBlockSize:
    @pytest.mark.parametrize("n_samples", [1, 2, 63, 64, 65, 100, 1000, 4096, 100_000])
    @pytest.mark.parametrize(
        "normalized_doppler",
        [0.4999, 0.25, 0.1, 0.05, 1 / 64, 1 / 128, 1 / 512, 0.003, 1e-4, 1e-6],
    )
    def test_matches_historical_search(self, n_samples, normalized_doppler):
        assert doppler_block_size(n_samples, normalized_doppler) == _reference_loop(
            n_samples, normalized_doppler
        )

    def test_result_is_power_of_two_and_satisfies_constraints(self):
        n_points = doppler_block_size(300, 0.01)
        assert n_points & (n_points - 1) == 0
        assert n_points >= 300
        assert int(np.floor(0.01 * n_points)) >= 1

    @pytest.mark.parametrize("bad_doppler", [0.0, -0.1, 0.5, 0.75, 1.0])
    def test_rejects_out_of_range_doppler(self, bad_doppler):
        with pytest.raises(SpecificationError):
            doppler_block_size(100, bad_doppler)

    def test_rejects_unsatisfiable_passband(self):
        # A 1e-9 normalized Doppler would need a ~2**30-point block.
        with pytest.raises(SpecificationError, match="passband"):
            doppler_block_size(100, 1e-9)

    def test_rejects_bad_sample_count(self):
        with pytest.raises(SpecificationError):
            doppler_block_size(0, 0.05)

    def test_custom_max_points(self):
        with pytest.raises(SpecificationError):
            doppler_block_size(1, 0.001, max_points=512)
        assert doppler_block_size(1, 0.01, max_points=512) == 128


class TestPipelineDopplerMode:
    def test_doppler_generation_uses_closed_form(self):
        block = generate_correlated_envelopes(
            np.array([[1.0, 0.5], [0.5, 1.0]], dtype=complex),
            200,
            normalized_doppler=0.05,
            rng=5,
        )
        assert block.envelopes.shape == (2, 200)

    def test_unsatisfiable_doppler_raises_before_generation(self):
        with pytest.raises(SpecificationError, match="passband"):
            generate_correlated_envelopes(
                np.array([[1.0, 0.5], [0.5, 1.0]], dtype=complex),
                10,
                normalized_doppler=1e-12,
                rng=5,
            )
