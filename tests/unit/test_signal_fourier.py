"""Unit tests for repro.signal.fourier."""

import numpy as np
import pytest

from repro.signal import dft, dft_matrix, idft, naive_dft, radix2_fft, radix2_ifft


@pytest.fixture()
def random_sequence(rng):
    return rng.normal(size=64) + 1j * rng.normal(size=64)


class TestConventions:
    def test_idft_carries_1_over_m(self):
        # IDFT of a constant spectrum M*delta is an impulse of height 1 at l=0
        spectrum = np.zeros(8, dtype=complex)
        spectrum[0] = 8.0
        time = idft(spectrum)
        assert time[0] == pytest.approx(1.0)
        assert np.allclose(time[1:], 1.0)  # constant sequence

    def test_round_trip(self, random_sequence):
        assert np.allclose(idft(dft(random_sequence)), random_sequence)

    def test_matches_paper_synthesis_formula(self):
        # u[l] = (1/M) sum_k U[k] exp(i 2 pi k l / M)  == numpy ifft
        rng = np.random.default_rng(0)
        spectrum = rng.normal(size=16) + 1j * rng.normal(size=16)
        m = 16
        manual = np.array(
            [
                np.sum(spectrum * np.exp(2j * np.pi * np.arange(m) * l / m)) / m
                for l in range(m)
            ]
        )
        assert np.allclose(idft(spectrum), manual)


class TestNaiveDft:
    def test_matches_numpy_forward(self, random_sequence):
        assert np.allclose(naive_dft(random_sequence), np.fft.fft(random_sequence))

    def test_matches_numpy_inverse(self, random_sequence):
        assert np.allclose(
            naive_dft(random_sequence, inverse=True), np.fft.ifft(random_sequence)
        )

    def test_non_power_of_two_length(self):
        x = np.arange(10, dtype=complex)
        assert np.allclose(naive_dft(x), np.fft.fft(x))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            naive_dft(np.ones((2, 2)))


class TestRadix2Fft:
    def test_matches_numpy_forward(self, random_sequence):
        assert np.allclose(radix2_fft(random_sequence), np.fft.fft(random_sequence))

    def test_matches_numpy_inverse(self, random_sequence):
        assert np.allclose(radix2_ifft(random_sequence), np.fft.ifft(random_sequence))

    def test_round_trip(self, random_sequence):
        assert np.allclose(radix2_ifft(radix2_fft(random_sequence)), random_sequence)

    @pytest.mark.parametrize("length", [1, 2, 4, 256, 1024])
    def test_various_power_of_two_lengths(self, length):
        rng = np.random.default_rng(length)
        x = rng.normal(size=length) + 1j * rng.normal(size=length)
        assert np.allclose(radix2_fft(x), np.fft.fft(x))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            radix2_fft(np.ones(12))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            radix2_fft(np.array([]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            radix2_fft(np.ones((4, 4)))

    def test_real_input_spectrum_is_conjugate_symmetric(self):
        x = np.random.default_rng(1).normal(size=32)
        spectrum = radix2_fft(x)
        assert np.allclose(spectrum[1:], np.conj(spectrum[1:][::-1]))


class TestDftMatrix:
    def test_matches_fft(self):
        x = np.arange(8, dtype=complex)
        assert np.allclose(dft_matrix(8) @ x, np.fft.fft(x))

    def test_unitary_up_to_scale(self):
        w = dft_matrix(6)
        assert np.allclose(w @ w.conj().T, 6 * np.eye(6))

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            dft_matrix(0)
