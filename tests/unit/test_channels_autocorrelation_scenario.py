"""Unit tests for repro.channels.autocorrelation and repro.channels.scenario."""

import numpy as np
import pytest
from scipy.special import j0

from repro.channels import (
    CustomScenario,
    DopplerSettings,
    MIMOArrayScenario,
    OFDMScenario,
    clarke_autocorrelation,
)
from repro.channels.autocorrelation import autocorrelation_error
from repro.core.covariance import CovarianceSpec
from repro.exceptions import DimensionError, DopplerError, SpecificationError


class TestClarkeAutocorrelation:
    def test_lag_zero_is_one(self):
        assert clarke_autocorrelation(np.array([0]), 0.05)[0] == pytest.approx(1.0)

    def test_matches_bessel(self):
        lags = np.arange(20)
        assert np.allclose(
            clarke_autocorrelation(lags, 0.1), j0(2 * np.pi * 0.1 * lags)
        )

    def test_zero_doppler_is_constant_one(self):
        assert np.allclose(clarke_autocorrelation(np.arange(10), 0.0), 1.0)

    def test_negative_doppler_rejected(self):
        with pytest.raises(DopplerError):
            clarke_autocorrelation(np.arange(3), -0.1)

    def test_error_of_exact_reference_is_zero(self):
        lags = np.arange(30)
        reference = clarke_autocorrelation(lags, 0.05)
        rms, peak = autocorrelation_error(reference, 0.05)
        assert rms == pytest.approx(0.0, abs=1e-12)
        assert peak == pytest.approx(0.0, abs=1e-12)

    def test_error_of_white_sequence_is_large(self):
        empirical = np.zeros(40)
        empirical[0] = 1.0
        rms, peak = autocorrelation_error(empirical, 0.05)
        assert rms > 0.3

    def test_error_rejects_empty(self):
        with pytest.raises(ValueError):
            autocorrelation_error(np.array([]), 0.05)


class TestDopplerSettings:
    def test_normalized_doppler(self):
        settings = DopplerSettings(sampling_frequency_hz=1000.0, max_doppler_hz=50.0)
        assert settings.normalized_doppler == pytest.approx(0.05)

    def test_from_mobile_speed(self):
        settings = DopplerSettings.from_mobile_speed(
            speed_ms=60.0 * 1000 / 3600, carrier_frequency_hz=900e6,
            sampling_frequency_hz=1000.0,
        )
        assert settings.max_doppler_hz == pytest.approx(50.0, rel=0.01)

    def test_invalid_values(self):
        with pytest.raises(SpecificationError):
            DopplerSettings(sampling_frequency_hz=0.0, max_doppler_hz=50.0)
        with pytest.raises(SpecificationError):
            DopplerSettings(sampling_frequency_hz=1000.0, max_doppler_hz=-1.0)
        with pytest.raises(SpecificationError):
            DopplerSettings(sampling_frequency_hz=1000.0, max_doppler_hz=50.0, n_points=4)


@pytest.fixture()
def paper_doppler():
    return DopplerSettings(sampling_frequency_hz=1000.0, max_doppler_hz=50.0)


class TestOFDMScenario:
    def test_covariance_spec_matches_eq22(self, paper_doppler, eq22_covariance):
        scenario = OFDMScenario(
            carrier_frequencies_hz=900e6 + 200e3 * np.array([2.0, 1.0, 0.0]),
            delays_s=np.array([[0, 1e-3, 4e-3], [1e-3, 0, 3e-3], [4e-3, 3e-3, 0]]),
            rms_delay_spread_s=1e-6,
            doppler=paper_doppler,
        )
        spec = scenario.covariance_spec(np.ones(3))
        assert isinstance(spec, CovarianceSpec)
        assert np.allclose(spec.matrix, eq22_covariance, atol=5e-4)

    def test_arrival_time_vector_accepted(self, paper_doppler):
        scenario = OFDMScenario(
            carrier_frequencies_hz=np.array([1e9, 1.0002e9]),
            delays_s=np.array([0.0, 2e-3]),
            rms_delay_spread_s=1e-6,
            doppler=paper_doppler,
        )
        assert scenario.delays_s[0, 1] == pytest.approx(2e-3)
        assert scenario.delays_s[1, 0] == pytest.approx(2e-3)

    def test_default_normalized_doppler(self, paper_doppler):
        scenario = OFDMScenario(
            carrier_frequencies_hz=np.array([1e9, 1.0002e9]),
            delays_s=np.zeros((2, 2)),
            rms_delay_spread_s=1e-6,
            doppler=paper_doppler,
        )
        assert scenario.default_normalized_doppler == pytest.approx(0.05)

    def test_wrong_power_shape_rejected(self, paper_doppler):
        scenario = OFDMScenario(
            carrier_frequencies_hz=np.array([1e9, 1.0002e9]),
            delays_s=np.zeros((2, 2)),
            rms_delay_spread_s=1e-6,
            doppler=paper_doppler,
        )
        with pytest.raises(DimensionError):
            scenario.covariance_spec(np.ones(3))

    def test_negative_frequency_rejected(self, paper_doppler):
        with pytest.raises(SpecificationError):
            OFDMScenario(
                carrier_frequencies_hz=np.array([-1e9]),
                delays_s=np.zeros((1, 1)),
                rms_delay_spread_s=1e-6,
                doppler=paper_doppler,
            )


class TestMIMOArrayScenario:
    def test_covariance_spec_matches_eq23(self, eq23_covariance):
        scenario = MIMOArrayScenario(
            n_antennas=3, spacing_wavelengths=1.0,
            mean_angle_rad=0.0, angular_spread_rad=np.pi / 18,
        )
        spec = scenario.covariance_spec(np.ones(3))
        assert np.allclose(spec.matrix, eq23_covariance, atol=2e-4)

    def test_no_doppler_means_none(self):
        scenario = MIMOArrayScenario(n_antennas=2, spacing_wavelengths=0.5)
        assert scenario.default_normalized_doppler is None

    def test_doppler_passthrough(self, paper_doppler):
        scenario = MIMOArrayScenario(
            n_antennas=2, spacing_wavelengths=0.5, doppler=paper_doppler
        )
        assert scenario.default_normalized_doppler == pytest.approx(0.05)

    def test_metadata_records_scenario(self):
        scenario = MIMOArrayScenario(n_antennas=2, spacing_wavelengths=0.5)
        spec = scenario.covariance_spec(np.ones(2))
        assert spec.metadata["scenario"] == "mimo-spatial"

    def test_invalid_array_rejected(self):
        with pytest.raises(SpecificationError):
            MIMOArrayScenario(n_antennas=2, spacing_wavelengths=0.5, angular_spread_rad=0.0)


class TestCustomScenario:
    def test_covariance_spec_from_components(self):
        rxx = np.array([[0.0, 0.3], [0.3, 0.0]])
        rxy = np.array([[0.0, 0.1], [-0.1, 0.0]])
        scenario = CustomScenario(rxx=rxx, ryy=rxx, rxy=rxy, ryx=-rxy)
        spec = scenario.covariance_spec(np.ones(2))
        assert spec.matrix[0, 1] == pytest.approx(0.6 - 0.2j)

    def test_shape_consistency_enforced(self):
        with pytest.raises(DimensionError):
            CustomScenario(
                rxx=np.zeros((2, 2)), ryy=np.zeros((3, 3)),
                rxy=np.zeros((2, 2)), ryx=np.zeros((2, 2)),
            )

    def test_n_branches(self):
        scenario = CustomScenario(
            rxx=np.zeros((4, 4)), ryy=np.zeros((4, 4)),
            rxy=np.zeros((4, 4)), ryx=np.zeros((4, 4)),
        )
        assert scenario.n_branches == 4
