"""Unit tests for repro.types value objects."""

import numpy as np
import pytest

from repro.types import EnvelopeBlock, GaussianBlock


@pytest.fixture()
def gaussian_block():
    rng = np.random.default_rng(0)
    samples = rng.normal(size=(3, 500)) + 1j * rng.normal(size=(3, 500))
    return GaussianBlock(samples=samples, variances=np.array([2.0, 2.0, 2.0]))


class TestGaussianBlock:
    def test_shape_properties(self, gaussian_block):
        assert gaussian_block.n_branches == 3
        assert gaussian_block.n_samples == 500

    def test_envelopes_are_moduli(self, gaussian_block):
        env = gaussian_block.envelopes()
        assert np.allclose(env.envelopes, np.abs(gaussian_block.samples))

    def test_envelopes_carry_variances_and_metadata(self):
        block = GaussianBlock(
            samples=np.ones((2, 4), dtype=complex),
            variances=np.array([1.0, 3.0]),
            metadata={"method": "test"},
        )
        env = block.envelopes()
        assert np.allclose(env.gaussian_variances, [1.0, 3.0])
        assert env.metadata["method"] == "test"

    def test_single_sample_vector(self):
        block = GaussianBlock(samples=np.ones(3, dtype=complex), variances=np.ones(3))
        assert block.n_branches == 3
        assert block.n_samples == 1


class TestEnvelopeBlock:
    def test_rms_per_branch(self):
        env = EnvelopeBlock(
            envelopes=np.array([[3.0, 4.0], [1.0, 1.0]]),
            gaussian_variances=np.array([1.0, 1.0]),
        )
        rms = env.rms()
        assert rms[0] == pytest.approx(np.sqrt(12.5))
        assert rms[1] == pytest.approx(1.0)

    def test_to_db_default_reference_is_rms(self):
        env = EnvelopeBlock(
            envelopes=np.array([[2.0, 2.0, 2.0, 2.0]]),
            gaussian_variances=np.array([1.0]),
        )
        db = env.to_db()
        assert np.allclose(db, 0.0)

    def test_to_db_custom_reference(self):
        env = EnvelopeBlock(
            envelopes=np.array([[10.0, 1.0]]),
            gaussian_variances=np.array([1.0]),
        )
        db = env.to_db(reference=np.array([1.0]))
        assert db[0, 0] == pytest.approx(20.0)
        assert db[0, 1] == pytest.approx(0.0)

    def test_to_db_handles_zero_envelope_without_warnings(self):
        env = EnvelopeBlock(
            envelopes=np.array([[0.0, 1.0]]),
            gaussian_variances=np.array([1.0]),
        )
        db = env.to_db()
        assert np.isfinite(db).all()

    def test_shape_properties(self):
        env = EnvelopeBlock(envelopes=np.ones((4, 7)), gaussian_variances=np.ones(4))
        assert env.n_branches == 4
        assert env.n_samples == 7
