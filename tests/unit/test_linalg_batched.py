"""Unit tests: batched linalg entry points match their single-matrix twins."""

import numpy as np
import pytest

from repro.core.coloring import compute_coloring, compute_coloring_batch
from repro.core.psd import force_positive_semidefinite
from repro.exceptions import CholeskyError, DimensionError
from repro.linalg import (
    batched_cholesky_factor,
    batched_clip_negative_eigenvalues,
    batched_force_positive_semidefinite,
    batched_hermitian_eigendecomposition,
    batched_hermitian_part,
    clip_negative_eigenvalues,
    hermitian_eigendecomposition,
)


@pytest.fixture(scope="module")
def psd_stack():
    """A stack of distinct PSD matrices with unequal powers."""
    rng = np.random.default_rng(7)
    matrices = []
    for index in range(6):
        basis = rng.normal(size=(4, 5)) + 1j * rng.normal(size=(4, 5))
        matrix = basis @ basis.conj().T / 5
        powers = rng.uniform(0.3, 3.0, 4)
        scale = np.sqrt(powers / np.real(np.diag(matrix)))
        matrices.append(matrix * np.outer(scale, scale))
    return np.stack(matrices)


@pytest.fixture(scope="module")
def mixed_stack(psd_stack):
    """PSD and non-PSD matrices mixed in one stack."""
    indefinite = np.array(
        [
            [1.0, 0.9, 0.1, 0.0],
            [0.9, 1.0, 0.9, 0.0],
            [0.1, 0.9, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ],
        dtype=complex,
    )
    assert np.min(np.linalg.eigvalsh(indefinite)) < 0
    return np.concatenate([psd_stack[:2], indefinite[np.newaxis]], axis=0)


class TestStackValidation:
    def test_rejects_2d_input(self):
        with pytest.raises(DimensionError):
            batched_hermitian_part(np.eye(3))

    def test_rejects_non_square_slices(self):
        with pytest.raises(DimensionError):
            batched_hermitian_part(np.zeros((2, 3, 4)))

    def test_rejects_empty_stack(self):
        with pytest.raises(DimensionError):
            batched_hermitian_part(np.zeros((0, 3, 3)))


class TestBatchedEigendecomposition:
    def test_matches_single_matrix_path(self, psd_stack):
        batched = batched_hermitian_eigendecomposition(psd_stack)
        for index in range(psd_stack.shape[0]):
            single = hermitian_eigendecomposition(psd_stack[index])
            assert np.array_equal(single.eigenvalues, batched.eigenvalues[index])
            assert np.array_equal(single.eigenvectors, batched.eigenvectors[index])

    def test_descending_order(self, psd_stack):
        batched = batched_hermitian_eigendecomposition(psd_stack)
        assert np.all(np.diff(batched.eigenvalues, axis=-1) <= 0)

    def test_min_max_properties(self, psd_stack):
        batched = batched_hermitian_eigendecomposition(psd_stack)
        assert np.array_equal(batched.min_eigenvalues, batched.eigenvalues[:, -1])
        assert np.array_equal(batched.max_eigenvalues, batched.eigenvalues[:, 0])
        assert batched.batch_size == psd_stack.shape[0]
        assert batched.size == psd_stack.shape[1]


class TestBatchedCholesky:
    def test_matches_numpy_per_slice(self, psd_stack):
        factors = batched_cholesky_factor(psd_stack)
        for index in range(psd_stack.shape[0]):
            herm = 0.5 * (psd_stack[index] + psd_stack[index].conj().T)
            assert np.array_equal(np.linalg.cholesky(herm), factors[index])

    def test_reports_failing_index(self, mixed_stack):
        with pytest.raises(CholeskyError, match="stack index 2"):
            batched_cholesky_factor(mixed_stack)


class TestBatchedPSDForcing:
    def test_clip_matches_single(self, mixed_stack):
        batched = batched_force_positive_semidefinite(mixed_stack, method="clip")
        for index in range(mixed_stack.shape[0]):
            single = force_positive_semidefinite(mixed_stack[index], method="clip")
            assert np.array_equal(single.matrix, batched[index].matrix)
            assert single.was_modified == batched[index].was_modified
            assert single.frobenius_error == batched[index].frobenius_error
            assert np.array_equal(
                single.negative_eigenvalues, batched[index].negative_eigenvalues
            )

    def test_epsilon_matches_single(self, mixed_stack):
        batched = batched_force_positive_semidefinite(
            mixed_stack, method="epsilon", epsilon=1e-5
        )
        for index in range(mixed_stack.shape[0]):
            single = force_positive_semidefinite(
                mixed_stack[index], method="epsilon", epsilon=1e-5
            )
            assert np.array_equal(single.matrix, batched[index].matrix)
            assert batched[index].was_modified  # epsilon always perturbs

    def test_higham_matches_single(self, mixed_stack):
        batched = batched_force_positive_semidefinite(mixed_stack, method="higham")
        for index in range(mixed_stack.shape[0]):
            single = force_positive_semidefinite(mixed_stack[index], method="higham")
            assert np.array_equal(single.matrix, batched[index].matrix)

    def test_unknown_method_rejected(self, psd_stack):
        with pytest.raises(ValueError):
            batched_force_positive_semidefinite(psd_stack, method="nope")

    def test_clip_helper_matches_single(self, mixed_stack):
        repaired = batched_clip_negative_eigenvalues(mixed_stack)
        for index in range(mixed_stack.shape[0]):
            assert np.array_equal(
                clip_negative_eigenvalues(mixed_stack[index]), repaired[index]
            )


class TestBatchedColoring:
    @pytest.mark.parametrize("method", ["eigen", "cholesky", "svd"])
    @pytest.mark.parametrize("psd_method", ["clip", "epsilon"])
    def test_psd_stack_matches_single(self, psd_stack, method, psd_method):
        batched = compute_coloring_batch(psd_stack, method=method, psd_method=psd_method)
        for index in range(psd_stack.shape[0]):
            single = compute_coloring(
                psd_stack[index], method=method, psd_method=psd_method
            )
            assert np.array_equal(single.coloring_matrix, batched[index].coloring_matrix)
            assert np.array_equal(
                single.effective_covariance, batched[index].effective_covariance
            )
            assert single.min_eigenvalue == batched[index].min_eigenvalue
            assert single.was_repaired == batched[index].was_repaired

    @pytest.mark.parametrize("method", ["eigen", "svd"])
    def test_non_psd_repair_matches_single(self, mixed_stack, method):
        batched = compute_coloring_batch(mixed_stack, method=method, psd_method="clip")
        for index in range(mixed_stack.shape[0]):
            single = compute_coloring(mixed_stack[index], method=method, psd_method="clip")
            assert np.array_equal(single.coloring_matrix, batched[index].coloring_matrix)
            assert single.negative_eigenvalue_count == batched[index].negative_eigenvalue_count
            assert (
                single.extra["psd_frobenius_error"]
                == batched[index].extra["psd_frobenius_error"]
            )

    def test_reconstruction_property(self, mixed_stack):
        batched = compute_coloring_batch(mixed_stack, method="eigen", psd_method="clip")
        for decomposition in batched:
            assert decomposition.reconstruction_error() < 1e-10

    def test_unknown_method_rejected(self, psd_stack):
        with pytest.raises(ValueError):
            compute_coloring_batch(psd_stack, method="qr")
