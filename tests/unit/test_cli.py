"""Unit tests for the command line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments import list_experiments


class TestParser:
    def test_list_command_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_parses(self):
        args = build_parser().parse_args(["run", "eq22-spectral-covariance", "--seed", "3"])
        assert args.command == "run"
        assert args.experiments == ["eq22-spectral-covariance"]
        assert args.seed == 3

    def test_export_requires_output(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["export", "eq22-spectral-covariance"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_batch_command_parses(self):
        args = build_parser().parse_args(
            ["batch", "--batch-sizes", "1,8", "--branches", "3", "--samples", "32"]
        )
        assert args.command == "batch"
        assert args.batch_sizes == "1,8"
        assert args.branches == 3
        assert args.samples == 32

    def test_serve_command_parses_with_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 8437
        assert args.max_queue == 64
        assert args.dispatch_slots == 4
        assert args.max_workers is None

    def test_serve_command_parses_overrides(self, tmp_path):
        args = build_parser().parse_args(
            [
                "serve",
                "--host", "0.0.0.0",
                "--port", "0",
                "--max-queue", "8",
                "--dispatch-slots", "2",
                "--max-workers", "6",
                "--backend", "scipy",
                "--cache-dir", str(tmp_path),
            ]
        )
        assert args.host == "0.0.0.0"
        assert args.port == 0
        assert args.max_queue == 8
        assert args.dispatch_slots == 2
        assert args.max_workers == 6
        assert args.backend == "scipy"

    def test_serve_rejects_degenerate_limits(self):
        with pytest.raises(SystemExit):
            main(["serve", "--max-queue", "0"])
        with pytest.raises(SystemExit):
            main(["serve", "--dispatch-slots", "0"])


class TestMain:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in list_experiments():
            assert experiment_id in out

    def test_run_single_experiment(self, capsys):
        code = main(["run", "eq22-spectral-covariance"])
        out = capsys.readouterr().out
        assert code == 0
        assert "eq22-spectral-covariance" in out
        assert "PASS" in out

    def test_run_unknown_experiment_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "does-not-exist"])

    def test_batch_runs_and_reports(self, capsys):
        code = main(["batch", "--batch-sizes", "1,4", "--samples", "16", "--repeats", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "scaling-batch" in out
        assert "cache hits" in out

    def test_batch_rejects_malformed_sizes(self):
        with pytest.raises(SystemExit):
            main(["batch", "--batch-sizes", "1,x"])
        with pytest.raises(SystemExit):
            main(["batch", "--batch-sizes", "0,4"])

    def test_export_writes_report_and_csv(self, tmp_path, capsys):
        code = main(
            ["export", "eq23-spatial-covariance", "--output", str(tmp_path / "out")]
        )
        assert code == 0
        report = tmp_path / "out" / "eq23-spatial-covariance.txt"
        assert report.exists()
        assert "Eq. (23)" in report.read_text(encoding="utf8")

    def test_export_with_series_writes_csv(self, tmp_path):
        code = main(
            [
                "export",
                "doppler-autocorrelation",
                "--output",
                str(tmp_path / "series"),
            ]
        )
        assert code == 0
        csv_path = tmp_path / "series" / "doppler-autocorrelation.csv"
        assert csv_path.exists()
        assert csv_path.read_text(encoding="utf8").startswith("index,")


class TestVersionFlag:
    def test_version_flag_prints_and_exits_zero(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_version_flag_parses_before_subcommand(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0


class TestBackendOption:
    def test_batch_accepts_backend(self, capsys):
        code = main(
            [
                "batch",
                "--batch-sizes",
                "1,4",
                "--samples",
                "16",
                "--repeats",
                "1",
                "--backend",
                "scipy",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "backend" in out
        assert "scipy" in out

    def test_batch_rejects_unknown_backend(self):
        from repro.exceptions import BackendError

        with pytest.raises(BackendError):
            main(["batch", "--batch-sizes", "1", "--samples", "8", "--repeats", "1",
                  "--backend", "not-a-backend"])

    def test_run_forwards_backend_only_where_supported(self, capsys):
        # eq22 has no backend parameter; the runner must drop the kwarg.
        code = main(["run", "eq22-spectral-covariance", "--backend", "scipy"])
        assert code == 0
        assert "PASS" in capsys.readouterr().out


class TestBatchCacheSummary:
    def test_batch_prints_cache_hit_miss_line(self, capsys):
        code = main(["batch", "--batch-sizes", "1,4", "--samples", "16", "--repeats", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "decomposition cache:" in out
        assert "hit rate" in out


class TestCacheDirOption:
    @pytest.fixture(autouse=True)
    def detach_default_caches(self):
        # --cache-dir attaches a disk tier to the process-wide caches;
        # detach it afterwards so other tests see memory-only defaults.
        yield
        from repro.engine import (
            default_decomposition_cache,
            default_filter_cache,
            default_plan_cache,
        )

        default_decomposition_cache().set_cache_dir(None)
        default_filter_cache().set_cache_dir(None)
        default_plan_cache().set_cache_dir(None)

    def test_cache_dir_parses_on_run_and_batch(self, tmp_path):
        args = build_parser().parse_args(
            ["batch", "--cache-dir", str(tmp_path / "c")]
        )
        assert args.cache_dir == tmp_path / "c"
        args = build_parser().parse_args(
            ["run", "eq22-spectral-covariance", "--cache-dir", str(tmp_path)]
        )
        assert args.cache_dir == tmp_path

    def test_doppler_batch_with_cache_dir_persists_filters(self, tmp_path, capsys):
        cache_dir = tmp_path / "persist"
        code = main(
            ["batch", "--doppler", "--batch-sizes", "1", "--points", "64",
             "--repeats", "1", "--cache-dir", str(cache_dir)]
        )
        assert code == 0
        capsys.readouterr()
        assert list((cache_dir / "filters").glob("*.npz"))

    def test_attach_cache_dir_covers_all_three_tiers(self, tmp_path):
        # --cache-dir must wire the compiled-plan tier too, so default-cache
        # runs (the pipeline helpers, `run` experiments) warm-start whole
        # compiled plans; the scaling experiments themselves use explicit
        # private caches and stay isolated from it.
        from repro.cli import _attach_cache_dir
        from repro.engine import (
            default_decomposition_cache,
            default_filter_cache,
            default_plan_cache,
        )

        _attach_cache_dir(tmp_path)
        assert default_decomposition_cache().cache_dir == tmp_path
        assert default_filter_cache().cache_dir == tmp_path
        assert default_plan_cache().cache_dir == tmp_path


class TestCacheSubcommand:
    def test_cache_command_parses(self, tmp_path):
        args = build_parser().parse_args(
            ["cache", "stats", "--cache-dir", str(tmp_path)]
        )
        assert args.command == "cache"
        assert args.action == "stats"
        assert args.cache_dir == tmp_path

    def test_cache_rejects_unknown_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "frobnicate"])

    def test_stats_without_directory_errors(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        with pytest.raises(SystemExit) as excinfo:
            main(["cache", "stats"])
        assert "REPRO_CACHE_DIR" in str(excinfo.value)

    @staticmethod
    def _populate_all_tiers(tmp_path):
        import numpy as np

        from repro.engine import (
            CompiledPlanCache,
            DecompositionCache,
            DopplerFilterCache,
            SimulationPlan,
            compile_plan,
        )

        matrix = np.array([[1.0, 0.4], [0.4, 1.0]], dtype=complex)
        DecompositionCache(cache_dir=tmp_path).coloring_for(matrix)
        DopplerFilterCache(cache_dir=tmp_path).get(64, 0.05)
        compile_plan(
            SimulationPlan.from_specs([matrix], seed=1),
            cache=DecompositionCache(),
            plan_cache=CompiledPlanCache(cache_dir=tmp_path),
        )

    def test_stats_reads_directory_from_env(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert str(tmp_path) in out
        assert "decompositions: 0 entries" in out
        assert "doppler filters: 0 entries" in out
        assert "compiled plans: 0 entries" in out

    def test_stats_counts_populated_tiers(self, tmp_path, capsys):
        self._populate_all_tiers(tmp_path)
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "decompositions: 1 entries" in out
        assert "doppler filters: 1 entries" in out
        assert "compiled plans: 1 entries" in out

    def test_clear_removes_everything(self, tmp_path, capsys):
        self._populate_all_tiers(tmp_path)
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "removed 3 entries" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "decompositions: 0 entries" in out
        assert "doppler filters: 0 entries" in out
        assert "compiled plans: 0 entries" in out


class TestBatchDopplerMode:
    def test_doppler_flags_parse(self):
        args = build_parser().parse_args(
            ["batch", "--doppler", "--fm", "0.1", "--points", "128"]
        )
        assert args.doppler is True
        assert args.fm == 0.1
        assert args.points == 128

    def test_doppler_defaults(self):
        args = build_parser().parse_args(["batch"])
        assert args.doppler is False
        assert args.fm == 0.05
        assert args.points == 128

    def test_doppler_batch_runs_and_reports_filter_reuse(self, capsys):
        code = main(
            ["batch", "--doppler", "--batch-sizes", "1,4", "--points", "64",
             "--repeats", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "scaling-doppler-batch" in out
        assert "doppler filters:" in out
        assert "entries served" in out

    def test_doppler_batch_accepts_backend(self, capsys):
        code = main(
            ["batch", "--doppler", "--batch-sizes", "1", "--points", "64",
             "--repeats", "1", "--backend", "scipy"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "scipy" in out

    def test_doppler_rejects_out_of_range_fm(self):
        with pytest.raises(SystemExit):
            main(["batch", "--doppler", "--fm", "0.6", "--repeats", "1"])

    def test_doppler_rejects_tiny_block(self):
        with pytest.raises(SystemExit):
            main(["batch", "--doppler", "--points", "4", "--repeats", "1"])


class TestFadingModelFlags:
    """``batch --model`` and the ``suite`` subcommand (the model zoo CLI)."""

    def test_batch_model_runs_and_reports(self, capsys):
        code = main(
            ["batch", "--batch-sizes", "1,4", "--samples", "16", "--repeats", "1",
             "--model", "rician", "--shape", "3.0"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "rician" in out

    def test_batch_model_missing_shape_is_a_clean_error(self):
        with pytest.raises(SystemExit, match="fading.shape"):
            main(["batch", "--batch-sizes", "1", "--model", "nakagami"])

    def test_batch_unknown_model_is_a_clean_error(self):
        with pytest.raises(SystemExit, match="fading.model"):
            main(["batch", "--batch-sizes", "1", "--model", "rice"])

    def test_batch_shape_without_model_rejected(self):
        with pytest.raises(SystemExit, match="--model"):
            main(["batch", "--batch-sizes", "1", "--shape", "2.0"])
        with pytest.raises(SystemExit, match="--model"):
            main(["batch", "--batch-sizes", "1", "--shadow-sigma", "3.0"])

    def test_batch_model_conflicts_with_doppler(self):
        with pytest.raises(SystemExit, match="snapshot"):
            main(["batch", "--doppler", "--model", "rician", "--shape", "2.0",
                  "--repeats", "1"])

    def test_suite_list_names_every_model(self, capsys):
        assert main(["suite", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("rayleigh", "rician", "nakagami", "weibull", "shadowed"):
            assert name in out

    def test_suite_runs_named_workload(self, capsys):
        code = main(["suite", "rician-los", "--samples", "64"])
        out = capsys.readouterr().out
        assert code == 0
        summary = json.loads(out)
        assert summary["suite"] == "rician-los"
        assert summary["n_samples"] == 64
        assert all(entry["fading"]["model"] == "rician" for entry in summary["entries"])

    def test_suite_unknown_name_is_a_clean_error(self):
        with pytest.raises(SystemExit, match="workload error"):
            main(["suite", "no-such-suite"])

    def test_suite_requires_exactly_one_source(self, tmp_path):
        with pytest.raises(SystemExit, match="exactly one"):
            main(["suite"])
        workload = tmp_path / "w.json"
        workload.write_text("{}")
        with pytest.raises(SystemExit, match="exactly one"):
            main(["suite", "rician-los", "--file", str(workload)])

    def test_suite_file_errors_name_the_field(self, tmp_path):
        workload = tmp_path / "w.json"
        workload.write_text(json.dumps({
            "name": "bad", "n_samples": 8, "seed": 1,
            "fading": {"model": "weibull"},
            "entries": [{"powers": [1.0, 2.0], "rho": 0.5}],
        }))
        with pytest.raises(SystemExit, match="fading.shape"):
            main(["suite", "--file", str(workload)])
