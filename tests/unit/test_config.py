"""Unit tests for repro.config."""

import dataclasses

import pytest

from repro.config import DEFAULTS, NumericDefaults, with_overrides


class TestNumericDefaults:
    def test_defaults_is_a_numeric_defaults_instance(self):
        assert isinstance(DEFAULTS, NumericDefaults)

    def test_defaults_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULTS.hermitian_atol = 1.0  # type: ignore[misc]

    def test_tolerances_are_positive(self):
        assert DEFAULTS.hermitian_atol > 0
        assert DEFAULTS.hermitian_rtol > 0
        assert DEFAULTS.eig_clip_tol > 0
        assert DEFAULTS.psd_tol > 0
        assert DEFAULTS.cholesky_jitter > 0
        assert DEFAULTS.bessel_series_tol > 0

    def test_bessel_terms_is_reasonably_large(self):
        assert DEFAULTS.bessel_series_terms >= 32

    def test_default_seed_is_an_int(self):
        assert isinstance(DEFAULTS.default_rng_seed, int)


class TestWithOverrides:
    def test_override_single_field(self):
        custom = with_overrides(psd_tol=1e-6)
        assert custom.psd_tol == 1e-6
        assert custom.hermitian_atol == DEFAULTS.hermitian_atol

    def test_original_defaults_unchanged(self):
        with_overrides(psd_tol=1e-6)
        assert DEFAULTS.psd_tol != 1e-6

    def test_override_from_custom_base(self):
        base = with_overrides(psd_tol=1e-6)
        layered = with_overrides(base, eig_clip_tol=1e-9)
        assert layered.psd_tol == 1e-6
        assert layered.eig_clip_tol == 1e-9

    def test_unknown_field_raises(self):
        with pytest.raises(TypeError):
            with_overrides(not_a_field=1.0)
