"""Unit tests for the pluggable linalg backends and their parity contract.

Every registered CPU backend that declares ``tolerance == 0.0`` must produce
``execute_plan`` output bit-identical to the numpy backend — including the
non-PSD repair path, streaming with block sizes that do not divide the
record length, and the Doppler substrate's stacked ``fft``/``ifft`` calls.
Backends without that guarantee must not share cache entries with the numpy
namespace (for Doppler plans just like snapshot ones).
"""

import numpy as np
import pytest

from repro.core import CovarianceSpec
from repro.engine import (
    DecompositionCache,
    DopplerSpec,
    LinalgBackend,
    NumpyBackend,
    ScipyBackend,
    SimulationEngine,
    SimulationPlan,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.exceptions import BackendError


def _psd_spec(rng, size):
    basis = rng.normal(size=(size, size + 1)) + 1j * rng.normal(size=(size, size + 1))
    return CovarianceSpec.from_covariance_matrix(basis @ basis.conj().T / (size + 1))


def _non_psd_spec(scale=1.0):
    # Correlation pattern (+0.9 / -0.9) that cannot be realized jointly:
    # the matrix is Hermitian with a genuinely negative eigenvalue, so the
    # compile path must run the Section 4.2 repair.
    matrix = scale * np.array(
        [[1.0, 0.9, -0.9], [0.9, 1.0, 0.9], [-0.9, 0.9, 1.0]], dtype=complex
    )
    return CovarianceSpec.from_covariance_matrix(matrix)


def _mixed_plan(seed=123):
    """A plan mixing shapes and PSD-ness (so the repair path is exercised)."""
    rng = np.random.default_rng(seed)
    specs = [
        _psd_spec(rng, 3),
        _non_psd_spec(),
        _psd_spec(rng, 2),
        _non_psd_spec(scale=2.5),
        _psd_spec(rng, 3),
    ]
    return SimulationPlan.from_specs(specs, seed=seed)


def _doppler_plan(seed=321, n_points=64):
    """A Doppler plan mixing shapes, block lengths, and compensation flags."""
    rng = np.random.default_rng(seed)
    plan = SimulationPlan()
    plan.add(_psd_spec(rng, 3), seed=seed + 1, doppler=DopplerSpec(0.05, n_points))
    plan.add(_non_psd_spec(), seed=seed + 2, doppler=DopplerSpec(0.05, n_points))
    plan.add(
        _psd_spec(rng, 2),
        seed=seed + 3,
        doppler=DopplerSpec(0.1, 2 * n_points, compensate_variance=False),
    )
    return plan


#: CPU backends claiming bitwise parity with numpy (probed at import time).
BITWISE_BACKENDS = [
    name
    for name in available_backends()
    if name != "numpy" and get_backend(name).tolerance == 0.0
]


class TestRegistry:
    def test_none_resolves_to_numpy(self):
        assert resolve_backend(None) is get_backend("numpy")
        assert isinstance(get_backend("numpy"), NumpyBackend)

    def test_instances_are_memoized(self):
        assert get_backend("numpy") is get_backend("numpy")

    def test_instance_passthrough(self):
        backend = NumpyBackend()
        assert get_backend(backend) is backend

    def test_unknown_name_raises(self):
        with pytest.raises(BackendError, match="unknown backend"):
            get_backend("not-a-backend")

    def test_non_string_spec_raises(self):
        with pytest.raises(BackendError, match="must be a name"):
            get_backend(3.14)

    def test_duplicate_registration_needs_replace(self):
        register_backend("test-duplicate", NumpyBackend, replace=True)
        with pytest.raises(BackendError, match="already registered"):
            register_backend("test-duplicate", NumpyBackend)
        register_backend("test-duplicate", NumpyBackend, replace=True)

    def test_invalid_name_rejected(self):
        with pytest.raises(BackendError):
            register_backend("", NumpyBackend)

    def test_numpy_and_scipy_available(self):
        names = available_backends()
        assert "numpy" in names
        assert "scipy" in names

    def test_scipy_rejects_unknown_driver(self):
        with pytest.raises(BackendError, match="driver"):
            ScipyBackend(driver="nope")

    def test_engine_rejects_unknown_backend(self):
        with pytest.raises(BackendError):
            SimulationEngine(backend="not-a-backend")


class TestCacheTokens:
    def test_bitwise_backends_share_numpy_namespace(self):
        assert get_backend("numpy").cache_token == "numpy"
        assert get_backend("scipy").cache_token == "numpy"

    def test_non_bitwise_backends_get_private_namespace(self):
        evr = ScipyBackend(driver="evr")
        assert evr.tolerance is None
        assert evr.cache_token == evr.name != "numpy"

    def test_private_namespace_never_reuses_numpy_entries(self):
        plan = _mixed_plan()
        cache = DecompositionCache()
        SimulationEngine(cache=cache).run(plan, 4)
        result = SimulationEngine(cache=cache, backend=ScipyBackend(driver="evr")).run(
            plan, 4
        )
        assert result.compile_report.cache_hits == 0
        assert result.compile_report.cache_misses == plan.n_entries

    @pytest.mark.parametrize("name", BITWISE_BACKENDS)
    def test_bitwise_backend_reuses_numpy_entries(self, name):
        plan = _mixed_plan()
        cache = DecompositionCache()
        SimulationEngine(cache=cache).run(plan, 4)
        result = SimulationEngine(cache=cache, backend=name).run(plan, 4)
        assert result.compile_report.cache_hits == plan.n_entries
        assert result.compile_report.cache_misses == 0

    def test_doppler_mode_does_not_change_cache_keys(self):
        """A Doppler entry and a snapshot entry over the same matrix share
        one decomposition — the cache key is Doppler-agnostic."""
        spec = _non_psd_spec()
        cache = DecompositionCache()
        snapshot_plan = SimulationPlan.from_specs([spec], seed=1)
        SimulationEngine(cache=cache).run(snapshot_plan, 4)
        doppler_plan = SimulationPlan.from_specs(
            [spec], seed=2, doppler=DopplerSpec(0.05, 64)
        )
        result = SimulationEngine(cache=cache).run(doppler_plan, 4)
        assert result.compile_report.cache_hits == 1
        assert result.compile_report.cache_misses == 0

    def test_doppler_private_namespace_never_reuses_numpy_entries(self):
        """Non-bitwise backends keep their private cache namespace for
        Doppler group keys just like for snapshot ones."""
        plan = _doppler_plan()
        cache = DecompositionCache()
        SimulationEngine(cache=cache).run(plan, 4)
        result = SimulationEngine(cache=cache, backend=ScipyBackend(driver="evr")).run(
            plan, 4
        )
        assert result.compile_report.cache_hits == 0
        assert result.compile_report.cache_misses == plan.n_entries

    @pytest.mark.parametrize("name", BITWISE_BACKENDS)
    def test_doppler_bitwise_backend_reuses_numpy_entries(self, name):
        plan = _doppler_plan()
        cache = DecompositionCache()
        SimulationEngine(cache=cache).run(plan, 4)
        result = SimulationEngine(cache=cache, backend=name).run(plan, 4)
        assert result.compile_report.cache_hits == plan.n_entries
        assert result.compile_report.cache_misses == 0


class TestBackendParity:
    """Satellite: every registered backend matches numpy on execute_plan."""

    @pytest.mark.parametrize("name", BITWISE_BACKENDS)
    def test_execute_plan_bit_identical_including_repair_path(self, name):
        plan = _mixed_plan()
        reference = SimulationEngine(cache=DecompositionCache()).run(plan, 48)
        result = SimulationEngine(cache=DecompositionCache(), backend=name).run(plan, 48)
        repaired = [block.metadata["was_repaired"] for block in reference.blocks]
        assert any(repaired), "plan must exercise the non-PSD repair path"
        for ref_block, block in zip(reference.blocks, result.blocks):
            assert np.array_equal(ref_block.samples, block.samples)
            assert ref_block.metadata["was_repaired"] == block.metadata["was_repaired"]
        assert result.backend == name

    @pytest.mark.parametrize("name", BITWISE_BACKENDS)
    def test_cholesky_coloring_bit_identical(self, name):
        rng = np.random.default_rng(7)
        specs = [_psd_spec(rng, 3) for _ in range(3)]
        plan = SimulationPlan.from_specs(specs, seed=7, coloring_method="cholesky")
        reference = SimulationEngine(cache=DecompositionCache()).run(plan, 16)
        result = SimulationEngine(cache=DecompositionCache(), backend=name).run(plan, 16)
        for ref_block, block in zip(reference.blocks, result.blocks):
            assert np.array_equal(ref_block.samples, block.samples)

    @pytest.mark.parametrize("name", BITWISE_BACKENDS)
    def test_stream_plan_non_divisible_blocks_bit_identical(self, name):
        plan = _mixed_plan(seed=55)
        reference_engine = SimulationEngine(cache=DecompositionCache())
        engine = SimulationEngine(cache=DecompositionCache(), backend=name)
        # block_size 7 never divides the implicit record lengths evenly and
        # stresses the persistent per-entry generators across blocks.
        reference = list(reference_engine.stream(plan, block_size=7, n_blocks=5))
        streamed = list(engine.stream(plan, block_size=7, n_blocks=5))
        for ref_batch, batch in zip(reference, streamed):
            for ref_block, block in zip(ref_batch.blocks, batch.blocks):
                assert np.array_equal(ref_block.samples, block.samples)

    def test_non_bitwise_backend_still_produces_valid_coloring(self):
        """No sample parity for evr — but L L^H must reproduce the covariance."""
        plan = _mixed_plan(seed=99)
        engine = SimulationEngine(cache=DecompositionCache(), backend=ScipyBackend(driver="evr"))
        compiled = engine.compile(plan)
        for index in range(plan.n_entries):
            decomposition = compiled.decomposition_for(index)
            factor = decomposition.coloring_matrix
            np.testing.assert_allclose(
                factor @ factor.conj().T,
                decomposition.effective_covariance,
                atol=1e-10,
            )


class TestFFTContract:
    """Satellite: the fft/ifft pair threaded through the backend contract."""

    #: Transform lengths covering power-of-two and mixed-radix pocketfft paths.
    LENGTHS = (64, 96, 100, 128)

    def _stack(self, n, seed=5):
        rng = np.random.default_rng(seed)
        return rng.normal(size=(6, n)) + 1j * rng.normal(size=(6, n))

    def test_numpy_backend_matches_np_fft(self):
        backend = get_backend("numpy")
        for n in self.LENGTHS:
            stack = self._stack(n)
            assert np.array_equal(backend.ifft(stack), np.fft.ifft(stack, axis=-1))
            assert np.array_equal(backend.fft(stack), np.fft.fft(stack, axis=-1))

    def test_fft_ifft_roundtrip(self):
        backend = get_backend("numpy")
        stack = self._stack(64)
        np.testing.assert_allclose(
            backend.ifft(backend.fft(stack)), stack, atol=1e-12
        )

    @pytest.mark.parametrize("name", BITWISE_BACKENDS)
    def test_bitwise_backend_fft_bit_identical(self, name):
        backend = get_backend(name)
        for n in self.LENGTHS:
            stack = self._stack(n)
            assert np.array_equal(backend.ifft(stack), np.fft.ifft(stack, axis=-1))
            assert np.array_equal(backend.fft(stack), np.fft.fft(stack, axis=-1))

    @pytest.mark.parametrize("name", BITWISE_BACKENDS)
    def test_doppler_execute_bit_identical(self, name):
        """The end-to-end Doppler path matches numpy on bitwise backends."""
        plan = _doppler_plan(seed=77)
        reference = SimulationEngine(cache=DecompositionCache()).run(plan, 100)
        result = SimulationEngine(cache=DecompositionCache(), backend=name).run(plan, 100)
        for ref_block, block in zip(reference.blocks, result.blocks):
            assert np.array_equal(ref_block.samples, block.samples)
        assert result.backend == name

    @pytest.mark.parametrize("name", BITWISE_BACKENDS)
    def test_doppler_stream_non_divisible_blocks_bit_identical(self, name):
        plan = _doppler_plan(seed=88)
        reference_engine = SimulationEngine(cache=DecompositionCache())
        engine = SimulationEngine(cache=DecompositionCache(), backend=name)
        # block_size 23 never divides the IDFT lengths and stresses the
        # per-group Doppler buffers across blocks.
        reference = list(reference_engine.stream(plan, block_size=23, n_blocks=5))
        streamed = list(engine.stream(plan, block_size=23, n_blocks=5))
        for ref_batch, batch in zip(reference, streamed):
            for ref_block, block in zip(ref_batch.blocks, batch.blocks):
                assert np.array_equal(ref_block.samples, block.samples)

    @pytest.mark.parametrize("name", ["cupy", "torch"])
    def test_gpu_backend_fft_within_documented_tolerance(self, name):
        """GPU FFTs carry an elementwise tolerance, not the bitwise guarantee.

        Skipped on hosts without the optional dependency (the backends are
        import-gated); on GPU-capable hosts this asserts the documented
        tolerance actually holds for the Doppler substrate's transforms.
        """
        try:
            backend = get_backend(name)
        except BackendError:
            pytest.skip(f"{name} is not installed on this host")
        assert backend.tolerance is not None and backend.tolerance > 0.0
        stack = self._stack(128)
        np.testing.assert_allclose(
            backend.ifft(stack), np.fft.ifft(stack, axis=-1), atol=backend.tolerance
        )


class TestCustomBackend:
    def test_registered_custom_backend_flows_through_engine(self):
        # The fused execute path prefers the `_into` hooks, so a counting
        # backend instruments both call forms of each transform.
        calls = {"eigh": 0, "matmul": 0, "ifft": 0}

        class CountingBackend(NumpyBackend):
            name = "test-counting"
            tolerance = 0.0

            def eigh(self, stack):
                calls["eigh"] += 1
                return super().eigh(stack)

            def matmul(self, a, b):
                calls["matmul"] += 1
                return super().matmul(a, b)

            def matmul_into(self, a, b, out):
                calls["matmul"] += 1
                return super().matmul_into(a, b, out)

            def ifft(self, array, axis=-1):
                calls["ifft"] += 1
                return super().ifft(array, axis=axis)

            def ifft_into(self, array, out, axis=-1):
                calls["ifft"] += 1
                return super().ifft_into(array, out, axis=axis)

        register_backend("test-counting", CountingBackend, replace=True)
        plan = _mixed_plan(seed=11)
        engine = SimulationEngine(cache=DecompositionCache(), backend="test-counting")
        result = engine.run(plan, 8)
        assert calls["eigh"] > 0
        assert calls["matmul"] > 0
        assert calls["ifft"] == 0  # snapshot plans never touch the FFT pair
        reference = SimulationEngine(cache=DecompositionCache()).run(plan, 8)
        for ref_block, block in zip(reference.blocks, result.blocks):
            assert np.array_equal(ref_block.samples, block.samples)

        # A Doppler plan routes its stacked IDFT through the same backend.
        doppler_plan = _doppler_plan(seed=12)
        engine.run(doppler_plan, 8)
        assert calls["ifft"] > 0

    def test_abstract_contract(self):
        with pytest.raises(TypeError):
            LinalgBackend()
