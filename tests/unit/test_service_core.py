"""Unit tests of the serving core (:mod:`repro.service.core`).

The fault-injection half uses the deterministic ``FlakyBackend`` /
``flaky_plan_cache`` harness from ``tests/conftest.py`` to prove the
tentpole's robustness claim: a mid-compile fault — a backend blowing up in
``eigh``, a plan-cache store failing a disk probe — fails only the affected
request; the worker loops survive and keep serving.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.api import Simulator
from repro.engine import SimulationPlan
from repro.engine.cache import DecompositionCache
from repro.exceptions import BackpressureError, ServiceError, SpecificationError
from repro.service import EnvelopeService, request_key

from conftest import InjectedFault

BASE = np.array([[1.0, 0.4 + 0.1j], [0.4 - 0.1j, 2.0]], dtype=complex)


def _plan(seed=7, scale=1.0):
    plan = SimulationPlan()
    plan.add(scale * BASE, seed=seed)
    return plan


def _fresh_sim(**kwargs):
    kwargs.setdefault("cache", DecompositionCache())
    return Simulator(**kwargs)


def _reference(plan, n_samples):
    """Run ``plan`` directly on a fresh session (the bit-identity oracle)."""
    sim = _fresh_sim()
    try:
        return sim.run(plan, n_samples)
    finally:
        sim.close()


class TestLifecycle:
    def test_submit_before_start_raises(self):
        async def scenario():
            service = EnvelopeService(_fresh_sim())
            try:
                with pytest.raises(ServiceError, match="not running"):
                    service.submit(_plan(), 16)
            finally:
                await service.stop()
                service.simulator.close()

        asyncio.run(scenario())

    def test_constructor_validation(self):
        sim = _fresh_sim()
        with pytest.raises(SpecificationError, match="max_queue"):
            EnvelopeService(sim, max_queue=0)
        with pytest.raises(SpecificationError, match="dispatch_slots"):
            EnvelopeService(sim, dispatch_slots=0)
        sim.close()

    def test_stop_cancels_unfinished_requests(self):
        async def scenario():
            sim = _fresh_sim(max_workers=1)
            service = EnvelopeService(sim, dispatch_slots=1)
            await service.start()
            # Submit without awaiting, then stop immediately: the request
            # must resolve (as cancelled), never hang.
            request_id = service.submit(_plan(), 16)
            await service.stop()
            with pytest.raises(ServiceError, match="cancelled"):
                await service.result(request_id)
            metrics = service.metrics()
            assert metrics["requests_cancelled"] >= 1
            sim.close()

        asyncio.run(scenario())

    def test_context_manager_round_trip(self):
        async def scenario():
            sim = _fresh_sim(max_workers=2)
            async with EnvelopeService(sim, dispatch_slots=2) as service:
                request_id = service.submit(_plan(seed=3), 32)
                result = await service.result(request_id)
            reference = _reference(_plan(seed=3), 32)
            assert np.array_equal(
                result.blocks[0].samples, reference.blocks[0].samples
            )
            sim.close()

        asyncio.run(scenario())


class TestStatusAndResults:
    def test_status_lifecycle_and_unknown_ids(self):
        async def scenario():
            sim = _fresh_sim(max_workers=2)
            async with EnvelopeService(sim, dispatch_slots=2) as service:
                assert service.status("req-999999") is None
                with pytest.raises(ServiceError, match="unknown request id"):
                    await service.result("req-999999")
                request_id = service.submit(_plan(), 16, client_id="alice")
                status = service.status(request_id)
                assert status["status"] in ("queued", "running")
                assert status["client_id"] == "alice"
                assert status["coalesced"] is False
                await service.result(request_id)
                assert service.status(request_id)["status"] == "done"
            sim.close()

        asyncio.run(scenario())

    def test_result_waiter_cancellation_leaves_request_alive(self):
        """Cancelling a result() awaiter must not cancel the request."""

        async def scenario():
            sim = _fresh_sim(max_workers=1)
            async with EnvelopeService(sim, dispatch_slots=1) as service:
                request_id = service.submit(_plan(), 16)
                waiter = asyncio.ensure_future(service.result(request_id))
                await asyncio.sleep(0)
                waiter.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await waiter
                # The request itself still completes normally.
                result = await service.result(request_id)
                assert result.n_entries == 1
            sim.close()

        asyncio.run(scenario())


class TestCoalescing:
    def test_request_key_folds_seeds_labels_and_samples(self):
        assert request_key(_plan(seed=1), 64) == request_key(_plan(seed=1), 64)
        assert request_key(_plan(seed=1), 64) != request_key(_plan(seed=2), 64)
        assert request_key(_plan(seed=1), 64) != request_key(_plan(seed=1), 65)
        labelled = SimulationPlan()
        labelled.add(BASE, seed=1, label="a")
        assert request_key(_plan(seed=1), 64) != request_key(labelled, 64)

    def test_unseeded_entries_never_coalesce(self):
        unseeded = SimulationPlan()
        unseeded.add(BASE, seed=None)
        assert request_key(unseeded, 64) is None

        async def scenario():
            sim = _fresh_sim(max_workers=2)
            async with EnvelopeService(sim, dispatch_slots=2) as service:
                plan_a = SimulationPlan()
                plan_a.add(BASE, seed=None)
                plan_b = SimulationPlan()
                plan_b.add(BASE, seed=None)
                id_a = service.submit(plan_a, 32)
                id_b = service.submit(plan_b, 32)
                result_a = await service.result(id_a)
                result_b = await service.result(id_b)
                # Unseeded entries defer to session defaults the service
                # cannot inspect, so each request runs as its own flight
                # (the results still agree here only because the package
                # default seed makes "no seed" reproducible).
                assert service.metrics()["flights_started"] == 2
                assert service.metrics()["requests_coalesced"] == 0
                assert result_a is not result_b
            sim.close()

        asyncio.run(scenario())

    def test_identical_requests_share_one_flight(self):
        async def scenario():
            sim = _fresh_sim(max_workers=2)
            async with EnvelopeService(sim, dispatch_slots=2) as service:
                ids = [
                    service.submit(_plan(seed=5), 64, client_id=f"c{i}")
                    for i in range(6)
                ]
                results = [await service.result(i) for i in ids]
                assert all(r is results[0] for r in results)
                metrics = service.metrics()
                assert metrics["flights_started"] == 1
                assert metrics["requests_coalesced"] == 5
                assert metrics["requests_completed"] == 6
            sim.close()

        asyncio.run(scenario())


class TestBackpressure:
    def test_full_queue_rejects_synchronously(self):
        async def scenario():
            sim = _fresh_sim(max_workers=1)
            async with EnvelopeService(sim, max_queue=2, dispatch_slots=1) as service:
                # No await between submits: the workers cannot drain, so the
                # queue bound is exact and the rejection synchronous.
                service.submit(_plan(seed=1), 16)
                service.submit(_plan(seed=2), 16)
                with pytest.raises(BackpressureError) as excinfo:
                    service.submit(_plan(seed=3), 16)
                assert excinfo.value.retry_after > 0
                metrics = service.metrics()
                assert metrics["requests_rejected"] == 1
                assert metrics["queued_flights"] == 2
                # A coalescing submit attaches without a queue slot, so it
                # succeeds even against a full queue.
                rid = service.submit(_plan(seed=1), 16, client_id="other")
                assert (await service.result(rid)).n_entries == 1
            sim.close()

        asyncio.run(scenario())


class TestCancellation:
    def test_cancel_queued_request_releases_slot(self):
        async def scenario():
            sim = _fresh_sim(max_workers=1)
            async with EnvelopeService(sim, max_queue=1, dispatch_slots=1) as service:
                request_id = service.submit(_plan(seed=1), 16)
                assert service.queue_depth == 1
                assert service.cancel(request_id) is True
                assert service.queue_depth == 0
                assert service.cancel(request_id) is False  # idempotent
                # The released slot is immediately reusable.
                replacement = service.submit(_plan(seed=2), 16)
                assert (await service.result(replacement)).n_entries == 1
                with pytest.raises(ServiceError, match="cancelled"):
                    await service.result(request_id)
            sim.close()

        asyncio.run(scenario())

    def test_cancel_one_coalesced_waiter_keeps_twin_alive(self):
        async def scenario():
            sim = _fresh_sim(max_workers=2)
            async with EnvelopeService(sim, dispatch_slots=2) as service:
                id_a = service.submit(_plan(seed=5), 64, client_id="a")
                id_b = service.submit(_plan(seed=5), 64, client_id="b")
                assert service.cancel(id_a) is True
                result = await service.result(id_b)
                reference = _reference(_plan(seed=5), 64)
                assert np.array_equal(
                    result.blocks[0].samples, reference.blocks[0].samples
                )
            sim.close()

        asyncio.run(scenario())


class TestFaultInjection:
    def test_backend_fault_fails_request_not_service(self, flaky_backend):
        """A mid-compile eigh fault resolves one request; the loop survives."""

        async def scenario():
            sim = Simulator(backend=flaky_backend(fail_at=1), cache=DecompositionCache())
            async with EnvelopeService(sim, dispatch_slots=1) as service:
                doomed = service.submit(_plan(seed=1), 16)
                with pytest.raises(InjectedFault, match="injected backend fault"):
                    await service.result(doomed)
                assert service.status(doomed)["status"] == "failed"
                assert "InjectedFault" in service.status(doomed)["error"]
                # Same service, next request: served by the same workers.
                survivor = service.submit(_plan(seed=2), 16)
                result = await service.result(survivor)
                assert result.n_entries == 1
                metrics = service.metrics()
                assert metrics["flights_failed"] == 1
                assert metrics["flights_completed"] == 1
                assert metrics["requests_failed"] == 1
                assert metrics["requests_completed"] == 1
            sim.close()

        asyncio.run(scenario())

    def test_backend_fault_fans_out_to_every_coalesced_waiter(self, flaky_backend):
        async def scenario():
            sim = Simulator(backend=flaky_backend(fail_at=1), cache=DecompositionCache())
            async with EnvelopeService(sim, dispatch_slots=1) as service:
                ids = [
                    service.submit(_plan(seed=1), 16, client_id=f"c{i}")
                    for i in range(3)
                ]
                for request_id in ids:
                    with pytest.raises(InjectedFault):
                        await service.result(request_id)
                assert service.metrics()["flights_failed"] == 1
                assert service.metrics()["requests_failed"] == 3
            sim.close()

        asyncio.run(scenario())

    def test_store_fault_fails_request_not_service(self, flaky_plan_cache):
        """A plan-cache disk fault is the request's problem, not the loop's."""
        from repro.engine import SimulationEngine

        async def scenario():
            engine = SimulationEngine(
                cache=DecompositionCache(), plan_cache=flaky_plan_cache(fail_at=1)
            )
            sim = _fresh_sim(max_workers=1)
            sim._engine = engine  # swap in the engine with the flaky plan tier
            async with EnvelopeService(sim, dispatch_slots=1) as service:
                doomed = service.submit(_plan(seed=1), 16)
                with pytest.raises(InjectedFault, match="injected store fault"):
                    await service.result(doomed)
                survivor = service.submit(_plan(seed=2), 16)
                result = await service.result(survivor)
                reference = _reference(_plan(seed=2), 16)
                assert np.array_equal(
                    result.blocks[0].samples, reference.blocks[0].samples
                )
            sim.close()

        asyncio.run(scenario())


class TestFairness:
    def test_round_robin_interleaves_clients(self):
        """A chatty client's backlog must not starve a late-arriving one."""
        from collections import deque

        async def scenario():
            sim = _fresh_sim(max_workers=1)
            async with EnvelopeService(sim, max_queue=16, dispatch_slots=1) as service:
                # All submits in one synchronous block: the worker cannot run
                # until the next await, so the queues are exactly as built.
                chatty = [
                    service.submit(_plan(seed=10 + i), 16, client_id="chatty")
                    for i in range(4)
                ]
                quiet = service.submit(_plan(seed=99), 16, client_id="quiet")
                assert set(service._client_queues) == {"chatty", "quiet"}
                # Drain the scheduler synchronously to observe dispatch order
                # (a single worker would execute flights in exactly this
                # sequence), then put the flights back untouched.
                drained = []
                while True:
                    flight = service._next_flight()
                    if flight is None:
                        break
                    drained.append(flight)
                dispatch = [flight.client_id for flight in drained]
                # Round-robin: after chatty's head-of-line flight, the quiet
                # client is served before chatty's 3-deep backlog.
                assert dispatch == ["chatty", "quiet", "chatty", "chatty", "chatty"]
                for flight in drained:
                    queue = service._client_queues.setdefault(
                        flight.client_id, deque()
                    )
                    queue.append(flight)
                    service._queued_flights += 1
                service._wakeup.set()
                for request_id in chatty + [quiet]:
                    await service.result(request_id)
            sim.close()

        asyncio.run(scenario())
