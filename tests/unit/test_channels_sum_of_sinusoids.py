"""Unit tests for the sum-of-sinusoids Rayleigh generator."""

import numpy as np
import pytest

from repro.channels import SumOfSinusoidsGenerator, clarke_autocorrelation
from repro.exceptions import DopplerError, SpecificationError
from repro.signal import normalized_autocorrelation


class TestConstruction:
    def test_basic_properties(self):
        generator = SumOfSinusoidsGenerator(1024, 0.05, n_sinusoids=32, rng=0)
        assert generator.n_points == 1024
        assert generator.normalized_doppler == 0.05
        assert generator.n_sinusoids == 32
        assert generator.output_variance == 1.0

    def test_invalid_doppler(self):
        with pytest.raises(DopplerError):
            SumOfSinusoidsGenerator(128, 0.6)

    def test_too_few_sinusoids(self):
        with pytest.raises(SpecificationError):
            SumOfSinusoidsGenerator(128, 0.05, n_sinusoids=2)

    def test_invalid_variance(self):
        with pytest.raises(SpecificationError):
            SumOfSinusoidsGenerator(128, 0.05, output_variance=0.0)

    def test_invalid_length(self):
        with pytest.raises(SpecificationError):
            SumOfSinusoidsGenerator(0, 0.05)


class TestGeneration:
    def test_block_shape_and_dtype(self):
        generator = SumOfSinusoidsGenerator(256, 0.1, rng=1)
        block = generator.generate_block()
        assert block.shape == (256,)
        assert np.iscomplexobj(block)

    def test_envelope_non_negative(self):
        generator = SumOfSinusoidsGenerator(256, 0.1, rng=2)
        assert np.all(generator.generate_envelope_block() >= 0)

    def test_reproducible(self):
        a = SumOfSinusoidsGenerator(128, 0.1, rng=5).generate_block()
        b = SumOfSinusoidsGenerator(128, 0.1, rng=5).generate_block()
        assert np.allclose(a, b)

    def test_blocks_differ(self):
        generator = SumOfSinusoidsGenerator(128, 0.1, rng=6)
        assert not np.allclose(generator.generate_block(), generator.generate_block())

    def test_output_variance_scaling(self):
        generator = SumOfSinusoidsGenerator(512, 0.05, output_variance=4.0, rng=7)
        blocks = [np.mean(np.abs(generator.generate_block()) ** 2) for _ in range(50)]
        assert np.mean(blocks) == pytest.approx(4.0, rel=0.1)


class TestStatisticalProperties:
    def test_mean_power_matches_target(self):
        generator = SumOfSinusoidsGenerator(2048, 0.05, n_sinusoids=64, rng=8)
        powers = [np.mean(np.abs(generator.generate_block()) ** 2) for _ in range(30)]
        assert np.mean(powers) == pytest.approx(1.0, rel=0.05)

    def test_average_autocorrelation_matches_clarke(self):
        generator = SumOfSinusoidsGenerator(4096, 0.05, n_sinusoids=128, rng=9)
        max_lag = 60
        acf = np.zeros(max_lag + 1)
        n_blocks = 30
        for _ in range(n_blocks):
            block = generator.generate_block()
            acf += np.real(normalized_autocorrelation(block, max_lag=max_lag))
        acf /= n_blocks
        reference = clarke_autocorrelation(np.arange(max_lag + 1), 0.05)
        assert np.sqrt(np.mean((acf - reference) ** 2)) < 0.1

    def test_envelope_is_approximately_rayleigh_for_many_sinusoids(self):
        generator = SumOfSinusoidsGenerator(8192, 0.05, n_sinusoids=256, rng=10)
        envelope = generator.generate_envelope_block()
        sigma_g = np.sqrt(np.mean(envelope**2))
        assert np.mean(envelope) == pytest.approx(sigma_g * np.sqrt(np.pi) / 2.0, rel=0.05)

    def test_theoretical_autocorrelation_helper(self):
        generator = SumOfSinusoidsGenerator(128, 0.05, rng=11)
        lags = np.arange(10)
        assert np.allclose(
            generator.theoretical_autocorrelation(lags),
            clarke_autocorrelation(lags, 0.05),
        )
