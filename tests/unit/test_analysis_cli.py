"""Tests for the reprolint command line (``python -m repro.analysis`` and
``repro-experiments lint``): exit codes 0/1/2, text and JSON output, the
``--output`` artifact file, and rule selection."""

import json
import textwrap

import pytest

from repro.analysis import main as analysis_main
from repro.cli import build_parser, main as cli_main

CLEAN_SOURCE = textwrap.dedent("""
    def add(a, b):
        return a + b
""")

BAD_SOURCE = textwrap.dedent("""
    import threading

    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self._hits = 0

        def record(self):
            with self._lock:
                self._hits += 1

        def peek(self):
            return self._hits
""")


@pytest.fixture()
def clean_file(tmp_path):
    path = tmp_path / "clean.py"
    path.write_text(CLEAN_SOURCE, encoding="utf8")
    return path


@pytest.fixture()
def bad_file(tmp_path):
    path = tmp_path / "bad.py"
    path.write_text(BAD_SOURCE, encoding="utf8")
    return path


class TestAnalysisMain:
    def test_clean_tree_exits_zero(self, clean_file, capsys):
        assert analysis_main([str(clean_file)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, bad_file, capsys):
        assert analysis_main([str(bad_file)]) == 1
        out = capsys.readouterr().out
        assert "[lock-discipline]" in out
        assert "finding" in out

    def test_missing_path_is_analyzer_error(self, tmp_path, capsys):
        assert analysis_main([str(tmp_path / "nope")]) == 2
        assert "error" in capsys.readouterr().err

    def test_syntax_error_is_analyzer_error(self, tmp_path, capsys):
        broken = tmp_path / "broken.py"
        broken.write_text("def (:\n", encoding="utf8")
        assert analysis_main([str(broken)]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_rule_is_analyzer_error(self, clean_file, capsys):
        assert analysis_main([str(clean_file), "--rules", "no-such-rule"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_json_format(self, bad_file, capsys):
        assert analysis_main([str(bad_file), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["files"] == 1
        assert payload["findings"]
        finding = payload["findings"][0]
        assert finding["rule"] == "lock-discipline"
        assert finding["line"] > 0

    def test_output_file_written(self, bad_file, tmp_path, capsys):
        report = tmp_path / "findings.json"
        code = analysis_main(
            [str(bad_file), "--format", "json", "--output", str(report)]
        )
        assert code == 1
        payload = json.loads(report.read_text(encoding="utf8"))
        assert payload == json.loads(capsys.readouterr().out)

    def test_rule_subset_runs_only_selected(self, bad_file, capsys):
        # The bad snippet only violates lock-discipline; restricting the
        # run to the allocation rule must come back clean.
        assert analysis_main(
            [str(bad_file), "--rules", "hot-path-allocation"]
        ) == 0
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert analysis_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in (
            "lock-discipline",
            "hot-path-allocation",
            "backend-into-contract",
            "cache-key-purity",
        ):
            assert name in out


class TestExperimentsLintSubcommand:
    def test_lint_parses(self):
        args = build_parser().parse_args(["lint", "src", "--format", "json"])
        assert args.command == "lint"
        assert args.paths == ["src"]
        assert args.format == "json"

    def test_lint_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["lint", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "exit codes" in out.lower() or "analyzer error" in out.lower()

    def test_lint_delegates_and_propagates_exit_codes(
        self, clean_file, bad_file, capsys
    ):
        assert cli_main(["lint", str(clean_file)]) == 0
        assert cli_main(["lint", str(bad_file)]) == 1
        out = capsys.readouterr().out
        assert "[lock-discipline]" in out

    def test_lint_analyzer_error_exit_code(self, tmp_path, capsys):
        assert cli_main(["lint", str(tmp_path / "missing")]) == 2
        capsys.readouterr()

    def test_lint_forwards_output_and_rules(self, bad_file, tmp_path, capsys):
        report = tmp_path / "out.json"
        code = cli_main(
            [
                "lint",
                str(bad_file),
                "--format",
                "json",
                "--rules",
                "lock-discipline",
                "--output",
                str(report),
            ]
        )
        assert code == 1
        payload = json.loads(report.read_text(encoding="utf8"))
        assert payload["rules"] == ["lock-discipline"]
        capsys.readouterr()
