"""Unit tests for the repro.validation package."""

import numpy as np
import pytest

from repro.core import RayleighFadingGenerator, RealTimeRayleighGenerator
from repro.exceptions import DimensionError
from repro.random import complex_gaussian, rayleigh_samples
from repro.validation import (
    branch_powers,
    check_autocorrelation,
    check_covariance,
    check_envelope_powers,
    check_rayleigh_fit,
    empirical_correlation_coefficients,
    empirical_envelope_correlation,
    max_absolute_error,
    normalized_covariance_error,
    phase_uniformity_test,
    rayleigh_ks_test,
    relative_frobenius_error,
    validate_block,
)


class TestMetrics:
    def test_relative_frobenius_error_zero_for_match(self, eq22_covariance):
        assert relative_frobenius_error(eq22_covariance, eq22_covariance) == 0.0

    def test_relative_frobenius_error_scaling(self, eq22_covariance):
        assert relative_frobenius_error(2 * eq22_covariance, eq22_covariance) == pytest.approx(1.0)

    def test_relative_error_zero_target(self):
        assert relative_frobenius_error(np.zeros((2, 2)), np.zeros((2, 2))) == 0.0
        assert relative_frobenius_error(np.eye(2), np.zeros((2, 2))) == float("inf")

    def test_max_absolute_error(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        b = np.array([[1.0, 2.5], [3.0, 4.0]])
        assert max_absolute_error(a, b) == pytest.approx(0.5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            relative_frobenius_error(np.eye(2), np.eye(3))

    def test_normalized_covariance_error_scale_invariance(self, eq22_covariance):
        measured = eq22_covariance + 0.05
        error_unit = normalized_covariance_error(measured, eq22_covariance)
        error_scaled = normalized_covariance_error(4 * measured, 4 * eq22_covariance)
        assert error_unit == pytest.approx(error_scaled)

    def test_normalized_covariance_error_rejects_bad_diag(self):
        with pytest.raises(ValueError):
            normalized_covariance_error(np.eye(2), np.zeros((2, 2)))


class TestEmpiricalEstimators:
    def test_branch_powers(self, rng):
        samples = 2.0 * (rng.normal(size=(2, 100_000)) + 1j * rng.normal(size=(2, 100_000)))
        assert np.allclose(branch_powers(samples), 8.0, rtol=0.03)

    def test_correlation_coefficients_unit_diagonal(self, eq22_covariance):
        generator = RayleighFadingGenerator(eq22_covariance, rng=0)
        rho = empirical_correlation_coefficients(generator.generate(100_000))
        assert np.allclose(np.diag(rho).real, 1.0, atol=1e-10)
        assert abs(rho[0, 1] - eq22_covariance[0, 1]) < 0.03

    def test_envelope_correlation_approximates_squared_gaussian_correlation(self):
        covariance = np.array([[1.0, 0.8], [0.8, 1.0]], dtype=complex)
        generator = RayleighFadingGenerator(covariance, rng=1)
        envelopes = np.abs(generator.generate(400_000))
        rho_env = empirical_envelope_correlation(envelopes)[0, 1]
        assert rho_env == pytest.approx(0.64, abs=0.04)

    def test_envelope_correlation_requires_two_samples(self):
        with pytest.raises(DimensionError):
            empirical_envelope_correlation(np.ones((2, 1)))


class TestKolmogorovSmirnovTests:
    def test_rayleigh_fit_accepts_true_rayleigh(self):
        samples = rayleigh_samples(50_000, gaussian_variance=2.0, rng=0)
        result = rayleigh_ks_test(samples, gaussian_variance=2.0)
        assert result.passed
        assert result.statistic < 0.01

    def test_rayleigh_fit_rejects_wrong_scale(self):
        samples = rayleigh_samples(50_000, gaussian_variance=2.0, rng=1)
        result = rayleigh_ks_test(samples, gaussian_variance=8.0)
        assert not result.passed
        assert result.statistic > 0.2

    def test_rayleigh_fit_rejects_gaussian_magnitudes(self, rng):
        samples = np.abs(rng.normal(size=50_000))  # half-normal, not Rayleigh
        result = rayleigh_ks_test(samples, gaussian_variance=1.0)
        assert not result.passed

    def test_rayleigh_test_input_validation(self):
        with pytest.raises(DimensionError):
            rayleigh_ks_test(np.ones(4), gaussian_variance=1.0)
        with pytest.raises(ValueError):
            rayleigh_ks_test(np.ones(100), gaussian_variance=0.0)

    def test_phase_uniformity_accepts_circular_gaussian(self):
        samples = complex_gaussian(50_000, rng=2)
        assert phase_uniformity_test(samples).passed

    def test_phase_uniformity_rejects_biased_phases(self, rng):
        samples = np.exp(1j * rng.normal(0.0, 0.3, size=50_000))
        assert not phase_uniformity_test(samples).passed


class TestChecks:
    def test_check_covariance_pass_and_fail(self, eq22_covariance):
        generator = RayleighFadingGenerator(eq22_covariance, rng=3)
        samples = generator.generate(200_000)
        assert check_covariance(samples, eq22_covariance, tolerance=0.05).passed
        assert not check_covariance(samples, 5 * eq22_covariance, tolerance=0.05).passed

    def test_check_envelope_powers(self, eq22_covariance):
        generator = RayleighFadingGenerator(eq22_covariance, rng=4)
        envelopes = np.abs(generator.generate(200_000))
        assert check_envelope_powers(envelopes, np.ones(3), tolerance=0.05).passed
        assert not check_envelope_powers(envelopes, np.full(3, 4.0), tolerance=0.05).passed

    def test_check_rayleigh_fit(self, eq22_covariance):
        generator = RayleighFadingGenerator(eq22_covariance, rng=5)
        envelopes = np.abs(generator.generate(100_000))
        result = check_rayleigh_fit(envelopes, np.ones(3))
        assert result.passed
        assert len(result.details) == 3

    def test_check_autocorrelation_pass_for_doppler_shaped(self):
        covariance = np.eye(2, dtype=complex)
        generator = RealTimeRayleighGenerator(
            covariance, normalized_doppler=0.05, n_points=4096, rng=6
        )
        samples = generator.generate(2)
        assert check_autocorrelation(samples[:, :4096], 0.05).passed

    def test_check_autocorrelation_fails_for_white_samples(self, rng):
        samples = rng.normal(size=(2, 8192)) + 1j * rng.normal(size=(2, 8192))
        assert not check_autocorrelation(samples, 0.05).passed

    def test_check_result_row_rendering(self, eq22_covariance):
        generator = RayleighFadingGenerator(eq22_covariance, rng=7)
        check = check_covariance(generator.generate(10_000), eq22_covariance)
        assert "covariance" in check.row()
        assert ("PASS" in check.row()) or ("FAIL" in check.row())


class TestValidateBlock:
    def test_snapshot_block_passes(self, eq22_covariance):
        generator = RayleighFadingGenerator(eq22_covariance, rng=8)
        block = generator.generate_gaussian(150_000)
        report = validate_block(block, eq22_covariance, covariance_tolerance=0.05)
        assert report.passed
        assert len(report.checks) == 3  # no autocorrelation check without Doppler
        assert "overall: PASS" in report.render()

    def test_realtime_block_includes_autocorrelation_check(self, eq23_covariance):
        generator = RealTimeRayleighGenerator(
            eq23_covariance, normalized_doppler=0.05, n_points=4096, rng=9
        )
        block = generator.generate_gaussian(4)
        report = validate_block(block, eq23_covariance, normalized_doppler=0.05)
        assert len(report.checks) == 4
        assert report.passed

    def test_wrong_target_fails(self, eq22_covariance):
        generator = RayleighFadingGenerator(eq22_covariance, rng=10)
        block = generator.generate_gaussian(50_000)
        report = validate_block(block, np.eye(3) * 9.0)
        assert not report.passed
        assert "FAIL" in report.render()
