"""Fixture tests for the reprolint rules (:mod:`repro.analysis`).

Each rule family gets at least one known-bad snippet that must fire and
one suppressed/marked variant that must stay silent — the contract the
ISSUE acceptance criteria pin.  Snippets are written to ``tmp_path`` and
linted through the public :func:`repro.analysis.run_lint` entry point so
suppression filtering is exercised too.
"""

import textwrap

import pytest

from repro.analysis import run_lint


def lint_snippet(tmp_path, source, rules=None, name="snippet.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf8")
    return run_lint([path], rules).findings


# --------------------------------------------------------------------- #
# lock-discipline
# --------------------------------------------------------------------- #
class TestLockDiscipline:
    # Pre-dedented so .replace()-based variants splice at real indentation.
    BAD_CLASS = textwrap.dedent("""
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self._hits = 0

            def record(self):
                with self._lock:
                    self._hits += 1

            def peek(self):
                return self._hits
    """)

    def test_unlocked_read_of_guarded_attribute_fires(self, tmp_path):
        findings = lint_snippet(tmp_path, self.BAD_CLASS, ["lock-discipline"])
        assert len(findings) == 1
        assert "_hits" in findings[0].message
        assert "read" in findings[0].message

    def test_unlocked_write_fires(self, tmp_path):
        source = self.BAD_CLASS.replace(
            "return self._hits", "self._hits = 0"
        )
        findings = lint_snippet(tmp_path, source, ["lock-discipline"])
        assert len(findings) == 1
        assert "written" in findings[0].message

    def test_trailing_suppression_silences(self, tmp_path):
        source = self.BAD_CLASS.replace(
            "return self._hits",
            "return self._hits  # reprolint: disable=lock-discipline",
        )
        assert lint_snippet(tmp_path, source, ["lock-discipline"]) == []

    def test_standalone_suppression_covers_next_line(self, tmp_path):
        source = self.BAD_CLASS.replace(
            "return self._hits",
            "# reprolint: disable=lock-discipline (benign snapshot)\n"
            "        return self._hits",
        )
        assert lint_snippet(tmp_path, source, ["lock-discipline"]) == []

    def test_def_header_suppression_covers_whole_body(self, tmp_path):
        source = self.BAD_CLASS.replace(
            "def peek(self):",
            "def peek(self):  # reprolint: disable=lock-discipline",
        )
        assert lint_snippet(tmp_path, source, ["lock-discipline"]) == []

    def test_locked_access_is_clean(self, tmp_path):
        source = self.BAD_CLASS.replace(
            "return self._hits",
            "with self._lock:\n            return self._hits",
        )
        assert lint_snippet(tmp_path, source, ["lock-discipline"]) == []

    def test_init_writes_are_construction_time(self, tmp_path):
        # __init__ assigns the guarded attribute without the lock: exempt.
        assert "def __init__" in self.BAD_CLASS
        source = self.BAD_CLASS.replace("return self._hits", "pass")
        assert lint_snippet(tmp_path, source, ["lock-discipline"]) == []

    def test_locked_suffix_methods_assumed_under_lock(self, tmp_path):
        source = self.BAD_CLASS.replace(
            "def peek(self):\n        return self._hits",
            "def _drain_locked(self):\n        self._hits = 0",
        )
        assert lint_snippet(tmp_path, source, ["lock-discipline"]) == []

    def test_locals_captured_under_lock_are_fine(self, tmp_path):
        source = """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}

                def lookup(self, key):
                    with self._lock:
                        entry = self._entries.get(key)
                    return entry
        """
        assert lint_snippet(tmp_path, source, ["lock-discipline"]) == []

    def test_mutating_method_call_counts_as_write(self, tmp_path):
        source = """
            import threading

            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}

                def add(self, key, value):
                    with self._lock:
                        self._entries.setdefault(key, value)

                def drop(self, key):
                    self._entries.pop(key, None)
        """
        findings = lint_snippet(tmp_path, source, ["lock-discipline"])
        assert len(findings) == 1
        assert "_entries" in findings[0].message

    def test_module_global_registry_pattern_fires(self, tmp_path):
        source = """
            import threading

            _LOCK = threading.Lock()
            _REGISTRY = {}

            def register(name, value):
                with _LOCK:
                    _REGISTRY[name] = value

            def names():
                return sorted(_REGISTRY)
        """
        findings = lint_snippet(tmp_path, source, ["lock-discipline"])
        assert len(findings) == 1
        assert "_REGISTRY" in findings[0].message

    def test_module_global_under_lock_is_clean(self, tmp_path):
        source = """
            import threading

            _LOCK = threading.Lock()
            _SINGLETON = None

            def get():
                global _SINGLETON
                with _LOCK:
                    if _SINGLETON is None:
                        _SINGLETON = object()
                    return _SINGLETON
        """
        assert lint_snippet(tmp_path, source, ["lock-discipline"]) == []

    def test_unguarded_attributes_are_ignored(self, tmp_path):
        source = """
            import threading

            class Plain:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._config = 3

                def bump(self):
                    with self._lock:
                        pass

                def config(self):
                    return self._config
        """
        assert lint_snippet(tmp_path, source, ["lock-discipline"]) == []


# --------------------------------------------------------------------- #
# hot-path-allocation
# --------------------------------------------------------------------- #
class TestHotPathAllocation:
    def test_hot_module_concatenate_fires(self, tmp_path):
        source = """
            # reprolint: hot-module
            import numpy as np

            def kernel(a, b):
                return np.concatenate([a, b])
        """
        findings = lint_snippet(tmp_path, source, ["hot-path-allocation"])
        assert len(findings) == 1
        assert "np.concatenate" in findings[0].message

    @pytest.mark.parametrize(
        "call", ["np.vstack([a])", "np.append(a, b)", "np.zeros(3)",
                 "np.empty(3)", "np.ones(3)", "np.empty_like(a)"]
    )
    def test_forbidden_constructors_fire(self, tmp_path, call):
        source = f"""
            # reprolint: hot-module
            import numpy as np

            def kernel(a, b):
                return {call}
        """
        assert len(lint_snippet(tmp_path, source, ["hot-path-allocation"])) == 1

    def test_copy_method_fires(self, tmp_path):
        source = """
            # reprolint: hot-module

            def kernel(a):
                return a.copy()
        """
        findings = lint_snippet(tmp_path, source, ["hot-path-allocation"])
        assert len(findings) == 1
        assert ".copy()" in findings[0].message

    def test_unmarked_module_is_not_hot(self, tmp_path):
        source = """
            import numpy as np

            def kernel(a, b):
                return np.concatenate([a, b])
        """
        assert lint_snippet(tmp_path, source, ["hot-path-allocation"]) == []

    def test_hot_path_marker_scopes_one_function(self, tmp_path):
        source = """
            import numpy as np

            def fused(a, b):  # reprolint: hot-path
                return np.vstack([a, b])

            def cold(a, b):
                return np.vstack([a, b])
        """
        findings = lint_snippet(tmp_path, source, ["hot-path-allocation"])
        assert len(findings) == 1
        assert "fused" in findings[0].message

    def test_workspace_constructor_marker_exempts(self, tmp_path):
        source = """
            # reprolint: hot-module
            import numpy as np

            def scratch(shape):  # reprolint: workspace-constructor
                return np.empty(shape)
        """
        assert lint_snippet(tmp_path, source, ["hot-path-allocation"]) == []

    def test_inline_suppression_silences(self, tmp_path):
        source = """
            # reprolint: hot-module
            import numpy as np

            def kernel(a):
                # reprolint: disable=hot-path-allocation (fresh result record)
                out = np.empty(a.shape)
                return out
        """
        assert lint_snippet(tmp_path, source, ["hot-path-allocation"]) == []

    def test_non_allocating_numpy_is_fine(self, tmp_path):
        source = """
            # reprolint: hot-module
            import numpy as np

            def kernel(a, out):
                np.multiply(a, 2.0, out=out)
                return np.matmul(a, a, out=out)
        """
        assert lint_snippet(tmp_path, source, ["hot-path-allocation"]) == []


# --------------------------------------------------------------------- #
# backend-into-contract
# --------------------------------------------------------------------- #
class TestBackendIntoContract:
    GOOD_BACKEND = textwrap.dedent("""
        import numpy as np

        class GoodBackend(LinalgBackend):
            def eigh(self, stack):
                return np.linalg.eigh(stack)

            def cholesky(self, stack):
                return np.linalg.cholesky(stack)

            def matmul_into(self, a, b, out):
                return np.matmul(a, b, out=out)
    """)

    def test_compliant_subclass_is_clean(self, tmp_path):
        assert lint_snippet(
            tmp_path, self.GOOD_BACKEND, ["backend-into-contract"]
        ) == []

    def test_missing_required_override_fires(self, tmp_path):
        source = """
            class Partial(LinalgBackend):
                def eigh(self, stack):
                    return stack
        """
        findings = lint_snippet(tmp_path, source, ["backend-into-contract"])
        assert len(findings) == 1
        assert "cholesky" in findings[0].message

    def test_signature_mismatch_fires(self, tmp_path):
        source = self.GOOD_BACKEND.replace(
            "def eigh(self, stack):", "def eigh(self, matrix):"
        ).replace("np.linalg.eigh(stack)", "np.linalg.eigh(matrix)")
        findings = lint_snippet(tmp_path, source, ["backend-into-contract"])
        assert len(findings) == 1
        assert "signature" in findings[0].message

    def test_into_method_not_returning_out_fires(self, tmp_path):
        source = self.GOOD_BACKEND.replace(
            "return np.matmul(a, b, out=out)",
            "result = np.matmul(a, b)\n        return result",
        )
        findings = lint_snippet(tmp_path, source, ["backend-into-contract"])
        assert findings
        assert any("return" in f.message for f in findings)

    def test_into_method_allocating_fires(self, tmp_path):
        source = self.GOOD_BACKEND.replace(
            "return np.matmul(a, b, out=out)",
            "tmp = np.empty(out.shape)\n        np.matmul(a, b, out=tmp)\n"
            "        np.copyto(out, tmp)\n        return out",
        )
        findings = lint_snippet(tmp_path, source, ["backend-into-contract"])
        assert len(findings) == 1
        assert "np.empty" in findings[0].message

    def test_gufunc_out_keyword_return_is_accepted(self, tmp_path):
        # `return np.matmul(a, b, out=out)` IS returning out (gufunc idiom).
        assert lint_snippet(
            tmp_path, self.GOOD_BACKEND, ["backend-into-contract"]
        ) == []

    def test_transitive_subclass_inherits_required_methods(self, tmp_path):
        source = self.GOOD_BACKEND + textwrap.dedent("""
            class Derived(GoodBackend):
                def matmul_into(self, a, b, out):
                    return np.matmul(a, b, out=out)
        """)
        assert lint_snippet(
            tmp_path, source, ["backend-into-contract"]
        ) == []

    def test_suppression_silences(self, tmp_path):
        source = """
            class Partial(LinalgBackend):  # reprolint: disable=backend-into-contract
                def eigh(self, stack):
                    return stack
        """
        assert lint_snippet(tmp_path, source, ["backend-into-contract"]) == []

    def test_unrelated_classes_are_ignored(self, tmp_path):
        source = """
            class NotABackend:
                def frob_into(self, a):
                    return None
        """
        assert lint_snippet(tmp_path, source, ["backend-into-contract"]) == []


# --------------------------------------------------------------------- #
# cache-key-purity
# --------------------------------------------------------------------- #
class TestCacheKeyPurity:
    def test_time_reference_in_reachable_helper_fires(self, tmp_path):
        source = """
            import hashlib
            import time

            def decomposition_cache_key(matrix):
                return _digest(matrix)

            def _digest(matrix):
                return hashlib.sha256(
                    matrix.tobytes() + str(time.time()).encode()
                ).hexdigest()
        """
        findings = lint_snippet(tmp_path, source, ["cache-key-purity"])
        assert findings
        assert any("time.time" in f.message for f in findings)
        assert any("_digest" in f.message for f in findings)

    def test_seed_reference_in_key_builder_fires(self, tmp_path):
        source = """
            class PlanEntry:
                def cache_key(self, defaults):
                    return (self.matrix_digest, self.seed)
        """
        findings = lint_snippet(tmp_path, source, ["cache-key-purity"])
        assert len(findings) == 1
        assert ".seed" in findings[0].message

    @pytest.mark.parametrize(
        "expression, token",
        [
            ("np.random.default_rng().random()", "random"),
            ("os.environ.get('HOME')", "os.environ"),
            ("entry.labels", ".labels"),
        ],
    )
    def test_forbidden_references_fire(self, tmp_path, expression, token):
        source = f"""
            import os

            import numpy as np

            def compiled_plan_cache_key(entry):
                return {expression}
        """
        findings = lint_snippet(tmp_path, source, ["cache-key-purity"])
        assert findings
        assert any(token in f.message for f in findings)

    def test_pure_key_builder_is_clean(self, tmp_path):
        source = """
            import hashlib

            def decomposition_cache_key(matrix, method, epsilon):
                hasher = hashlib.sha256()
                hasher.update(matrix.tobytes())
                hasher.update(repr((method, float(epsilon))).encode())
                return hasher.hexdigest()
        """
        assert lint_snippet(tmp_path, source, ["cache-key-purity"]) == []

    def test_unreachable_impurity_is_ignored(self, tmp_path):
        source = """
            import time

            def decomposition_cache_key(matrix):
                return repr(matrix)

            def unrelated_timer():
                return time.perf_counter()
        """
        assert lint_snippet(tmp_path, source, ["cache-key-purity"]) == []

    def test_suppression_silences(self, tmp_path):
        source = """
            class PlanEntry:
                def cache_key(self, defaults):
                    # reprolint: disable=cache-key-purity (seed excluded upstream)
                    return (self.matrix_digest, self.seed)
        """
        assert lint_snippet(tmp_path, source, ["cache-key-purity"]) == []

    def test_builtin_attr_calls_do_not_expand_reachability(self, tmp_path):
        # memo.get(...) must not drag in unrelated classes defining get().
        source = """
            import time

            class Unrelated:
                def get(self, key):
                    return time.time()

            def decomposition_cache_key(matrix, memo={}):
                return memo.get(matrix)
        """
        assert lint_snippet(tmp_path, source, ["cache-key-purity"]) == []
