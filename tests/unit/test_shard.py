"""Unit tests for the sharding layer (:mod:`repro.shard`).

Covers the pure pieces in-process — partitioning, the wire round-trip of
:class:`PlanSlice` payloads (including the regression demanded by ISSUE 10:
non-trivial :class:`FadingSpec`\\ s and non-int seeds survive the trip, and
slices never coalesce onto an unrelated plan's compiled-plan cache entry),
result merging, and the CLI surface.  The subprocess orchestration itself is
exercised by ``tests/property/test_property_shard.py``.
"""

import json

import numpy as np
import pytest

from repro.engine import CompileReport, DopplerSpec, FadingSpec, SimulationPlan
from repro.engine.plancache import compiled_plan_cache_key
from repro.engine.result import BatchResult
from repro.exceptions import SpecificationError
from repro.service.protocol import seed_from_payload, seed_to_payload
from repro.shard import (
    PlanSlice,
    merge_compile_reports,
    merge_results,
    partition_plan,
    slice_from_payload,
    slice_to_payload,
)
from repro.types import GaussianBlock

_BASE = np.array([[1.0, 0.4 + 0.1j], [0.4 - 0.1j, 2.0]], dtype=complex)


def _sweep_plan(n_entries: int) -> SimulationPlan:
    plan = SimulationPlan()
    for index in range(n_entries):
        plan.add(_BASE * (1.0 + index), seed=100 + index, label=f"entry-{index}")
    return plan


class TestPartitionPlan:
    def test_contiguous_balanced_slices(self):
        plan = _sweep_plan(10)
        slices = partition_plan(plan, 3)
        assert [s.index for s in slices] == [0, 1, 2]
        assert all(s.n_shards == 3 for s in slices)
        sizes = [s.n_entries for s in slices]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1
        # Contiguous tiling: starts are the running sum of sizes, and the
        # entries land in original order with seeds/labels intact.
        cursor = 0
        for plan_slice in slices:
            assert plan_slice.start == cursor
            for offset, entry in enumerate(plan_slice.plan):
                original = plan[cursor + offset]
                assert entry.seed == original.seed
                assert entry.label == original.label
            cursor += plan_slice.n_entries

    def test_more_shards_than_entries_drops_empties(self):
        slices = partition_plan(_sweep_plan(5), 8)
        assert len(slices) == 5
        assert all(s.n_entries == 1 for s in slices)
        assert all(s.n_shards == 5 for s in slices)

    def test_single_shard_is_whole_plan(self):
        plan = _sweep_plan(4)
        (only,) = partition_plan(plan, 1)
        assert only.start == 0
        assert only.n_entries == len(plan)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(SpecificationError):
            partition_plan(_sweep_plan(3), 0)
        with pytest.raises(SpecificationError):
            partition_plan(SimulationPlan(), 2)


class TestSliceWireRoundTrip:
    """Regression (ISSUE 10 satellite): fading specs and non-int seeds
    survive the slice payload, and decoded slices key-purely address the
    compiled-plan cache."""

    def _fancy_plan(self) -> SimulationPlan:
        plan = SimulationPlan()
        plan.add(_BASE, seed=None, label="plain")
        plan.add(
            2.0 * _BASE,
            seed=np.int64(7),
            fading=FadingSpec(model="rician", shape=3.5),
            label="rician",
        )
        plan.add(
            _BASE,
            seed=11,
            fading=FadingSpec(model="weibull", shape=1.75, shadowing_sigma_db=2.0),
            doppler=DopplerSpec(normalized_doppler=0.05, n_points=64),
            label="shadowed-doppler",
        )
        plan.add(
            3.0 * _BASE,
            seed=np.random.Generator(np.random.PCG64(1234)),
            label="generator",
        )
        return plan

    def test_round_trip_preserves_fading_and_seeds(self):
        plan = self._fancy_plan()
        (plan_slice,) = partition_plan(plan, 1)
        # Through real JSON text, not just dict equality: the payload must
        # be exactly what a worker reads off disk.
        wire = json.dumps(slice_to_payload(plan_slice, 96), sort_keys=True)
        decoded, n_samples = slice_from_payload(json.loads(wire))

        assert n_samples == 96
        assert (decoded.index, decoded.n_shards, decoded.start) == (0, 1, 0)
        assert len(decoded.plan) == len(plan)
        for entry, original in zip(decoded.plan, plan):
            assert entry.label == original.label
            assert (entry.doppler is None) == (original.doppler is None)
            if original.fading is None:
                assert entry.fading is None
            else:
                assert entry.fading.model == original.fading.model
                assert entry.fading.shape == original.fading.shape
                assert (
                    entry.fading.shadowing_sigma_db
                    == original.fading.shadowing_sigma_db
                )
                assert entry.fading.fading_token() == original.fading.fading_token()

        assert decoded.plan[0].seed is None
        assert decoded.plan[1].seed == 7
        assert decoded.plan[2].seed == 11
        # The generator seed restores to the *identical* stream.
        reference = np.random.Generator(np.random.PCG64(1234))
        restored = decoded.plan[3].seed
        assert isinstance(restored, np.random.Generator)
        assert (
            restored.standard_normal(16).tobytes()
            == reference.standard_normal(16).tobytes()
        )

    def test_decoded_slice_hashes_to_the_same_plan_key(self):
        plan = self._fancy_plan()
        for plan_slice in partition_plan(plan, 2):
            wire = json.dumps(slice_to_payload(plan_slice, 64))
            decoded, _ = slice_from_payload(json.loads(wire))
            assert compiled_plan_cache_key(decoded.plan) == compiled_plan_cache_key(
                plan_slice.plan
            )

    def test_slices_never_coalesce_with_each_other_or_unrelated_plans(self):
        plan = self._fancy_plan()
        first, second = partition_plan(plan, 2)
        key_first = compiled_plan_cache_key(first.plan)
        key_second = compiled_plan_cache_key(second.plan)
        assert key_first != key_second

        # An unrelated plan differing *only* in fading must key apart from
        # both slices — fading_token purity keeps the plans/ tier honest.
        unrelated = SimulationPlan()
        for entry in first.plan:
            unrelated.add(
                entry.spec,
                seed=entry.seed,
                label=entry.label,
                doppler=entry.doppler,
                fading=FadingSpec(model="nakagami", shape=2.0),
            )
        key_unrelated = compiled_plan_cache_key(unrelated)
        assert key_unrelated not in (key_first, key_second)

        # Seeds and labels are execution-time inputs: a re-seeded copy of a
        # slice *should* share its compiled artifact.
        reseeded = SimulationPlan()
        for entry in second.plan:
            reseeded.add(
                entry.spec,
                seed=9999,
                label="renamed",
                doppler=entry.doppler,
                fading=entry.fading,
            )
        assert compiled_plan_cache_key(reseeded) == key_second

    def test_malformed_payloads_rejected(self):
        plan = _sweep_plan(2)
        (plan_slice,) = partition_plan(plan, 1)
        good = slice_to_payload(plan_slice, 32)

        with pytest.raises(SpecificationError):
            slice_from_payload("not a dict")
        bad_version = dict(good, version=99)
        with pytest.raises(SpecificationError):
            slice_from_payload(bad_version)
        no_slice = {key: value for key, value in good.items() if key != "slice"}
        with pytest.raises(SpecificationError):
            slice_from_payload(no_slice)
        bad_meta = dict(good, slice={"index": "x"})
        with pytest.raises(SpecificationError):
            slice_from_payload(bad_meta)


class TestSeedPayloads:
    def test_none_and_ints_pass_through(self):
        assert seed_to_payload(None) is None
        assert seed_to_payload(5) == 5
        assert seed_to_payload(np.int64(6)) == 6
        assert type(seed_to_payload(np.int64(6))) is int
        assert seed_from_payload(None) is None
        assert seed_from_payload(7) == 7

    def test_generator_state_round_trips_every_family(self):
        for bit_generator in (np.random.PCG64, np.random.MT19937, np.random.SFC64):
            source = np.random.Generator(bit_generator(42))
            source.standard_normal(3)  # advance: mid-stream states too
            payload = json.loads(json.dumps(seed_to_payload(source)))
            restored = seed_from_payload(payload)
            assert (
                restored.standard_normal(8).tobytes()
                == source.standard_normal(8).tobytes()
            )

    def test_unsupported_seed_types_rejected(self):
        with pytest.raises(SpecificationError):
            seed_to_payload("twelve")
        with pytest.raises(SpecificationError):
            seed_to_payload(3.5)

    def test_malformed_generator_payloads_rejected(self):
        with pytest.raises(SpecificationError):
            seed_from_payload({"kind": "generator"})
        with pytest.raises(SpecificationError):
            seed_from_payload(
                {"kind": "generator", "state": {"bit_generator": "NoSuchRNG"}}
            )


def _report(n_entries: int, **overrides) -> CompileReport:
    fields = dict(
        n_entries=n_entries,
        n_groups=1,
        n_unique_matrices=n_entries,
        cache_hits=0,
        cache_misses=n_entries,
        compile_seconds=0.25,
    )
    fields.update(overrides)
    return CompileReport(**fields)


def _partial(plan_slice: PlanSlice, n_samples: int = 8, **report_overrides) -> BatchResult:
    blocks = []
    for offset in range(plan_slice.n_entries):
        entry_index = plan_slice.start + offset
        blocks.append(
            GaussianBlock(
                samples=np.full((2, n_samples), entry_index, dtype=complex),
                variances=np.ones(2),
                metadata={"plan_index": offset, "label": f"entry-{entry_index}"},
            )
        )
    return BatchResult(
        blocks=tuple(blocks),
        n_samples=n_samples,
        compile_report=_report(plan_slice.n_entries, **report_overrides),
        execute_seconds=0.1,
        backend="numpy",
    )


class TestMergeResults:
    def test_out_of_order_partials_merge_plan_ordered(self):
        slices = partition_plan(_sweep_plan(7), 3)
        partials = [_partial(s) for s in slices]
        shuffled = [slices[2], slices[0], slices[1]]
        merged = merge_results(
            shuffled,
            [partials[2], partials[0], partials[1]],
            n_samples=8,
            wall_seconds=1.5,
            backend="numpy",
        )
        assert len(merged.blocks) == 7
        for index, block in enumerate(merged.blocks):
            # Whole-plan metadata restored and payloads in original order.
            assert block.metadata["plan_index"] == index
            assert block.samples[0, 0] == index
        assert merged.n_samples == 8
        assert merged.execute_seconds == 1.5

    def test_compile_counters_summed_and_seconds_maxed(self):
        slices = partition_plan(_sweep_plan(6), 2)
        partials = [
            _partial(slices[0], plan_cache_hits=1, compile_seconds=0.5),
            _partial(slices[1], doppler_filters_built=2, compile_seconds=2.0),
        ]
        merged = merge_results(slices, partials, n_samples=8)
        report = merged.compile_report
        assert report.n_entries == 6
        assert report.cache_misses == 6
        assert report.plan_cache_hits == 1
        assert report.doppler_filters_built == 2
        assert report.compile_seconds == 2.0

    def test_gap_and_overlap_rejected(self):
        slices = partition_plan(_sweep_plan(6), 3)
        partials = [_partial(s) for s in slices]
        with pytest.raises(SpecificationError, match="missing or overlapping"):
            merge_results(
                [slices[0], slices[2]], [partials[0], partials[2]], n_samples=8
            )
        overlapping = PlanSlice(
            index=1, n_shards=3, start=1, plan=slices[1].plan
        )
        with pytest.raises(SpecificationError, match="missing or overlapping"):
            merge_results(
                [slices[0], overlapping, slices[2]],
                [partials[0], _partial(overlapping), partials[2]],
                n_samples=8,
            )

    def test_block_count_mismatch_rejected(self):
        slices = partition_plan(_sweep_plan(4), 2)
        short = _partial(slices[0])
        short = BatchResult(
            blocks=short.blocks[:-1],
            n_samples=short.n_samples,
            compile_report=short.compile_report,
            execute_seconds=short.execute_seconds,
            backend=short.backend,
        )
        with pytest.raises(SpecificationError, match="blocks"):
            merge_results(slices, [short, _partial(slices[1])], n_samples=8)

    def test_length_mismatch_and_empty_rejected(self):
        slices = partition_plan(_sweep_plan(4), 2)
        with pytest.raises(SpecificationError):
            merge_results(slices, [_partial(slices[0])], n_samples=8)
        with pytest.raises(SpecificationError):
            merge_results([], [], n_samples=8)
        with pytest.raises(SpecificationError):
            merge_compile_reports([])


class TestShardCLI:
    def test_shard_command_parses_with_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["shard"])
        assert args.command == "shard"
        assert args.shards == 2
        assert args.entries == 8
        assert args.samples == 64
        assert not args.retry_failed
        assert not args.check

    def test_shard_command_parses_overrides(self, tmp_path):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "shard",
                "--shards", "4",
                "--entries", "12",
                "--branches", "3",
                "--samples", "96",
                "--doppler-every", "3",
                "--work-dir", str(tmp_path / "work"),
                "--cache-dir", str(tmp_path / "cache"),
                "--retry-failed",
                "--check",
            ]
        )
        assert args.shards == 4
        assert args.entries == 12
        assert args.doppler_every == 3
        assert args.retry_failed and args.check

    def test_retry_failed_requires_work_dir(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="work-dir"):
            main(["shard", "--retry-failed", "--cache-dir", str(tmp_path)])

    def test_invalid_counts_rejected(self, tmp_path):
        from repro.cli import main

        for argv in (
            ["shard", "--shards", "0"],
            ["shard", "--entries", "0"],
            ["shard", "--samples", "0"],
        ):
            with pytest.raises(SystemExit):
                main(argv + ["--cache-dir", str(tmp_path)])
