"""Unit tests for the coloring-matrix computation (Section 4.3)."""

import numpy as np
import pytest

from repro.core import compute_coloring
from repro.core.coloring import (
    coloring_matrix_cholesky,
    coloring_matrix_eigen,
    coloring_matrix_svd,
)
from repro.exceptions import CholeskyError, ColoringError
from repro.linalg import clip_negative_eigenvalues


class TestColoringMatrixEigen:
    def test_reconstructs_pd_matrix(self, eq22_covariance):
        factor = coloring_matrix_eigen(eq22_covariance)
        assert np.allclose(factor @ factor.conj().T, eq22_covariance, atol=1e-12)

    def test_reconstructs_singular_psd_matrix(self):
        matrix = np.ones((4, 4), dtype=complex)
        factor = coloring_matrix_eigen(matrix)
        assert np.allclose(factor @ factor.conj().T, matrix, atol=1e-12)

    def test_matches_paper_construction_v_sqrt_lambda(self, eq23_covariance):
        # L = V sqrt(Lambda) from the descending-ordered eigendecomposition.
        from repro.linalg import hermitian_eigendecomposition

        decomp = hermitian_eigendecomposition(eq23_covariance)
        expected = decomp.eigenvectors * np.sqrt(decomp.eigenvalues)
        assert np.allclose(coloring_matrix_eigen(eq23_covariance), expected)

    def test_square_not_triangular(self, eq22_covariance):
        factor = coloring_matrix_eigen(eq22_covariance)
        assert factor.shape == (3, 3)
        # Generally dense: the strict upper triangle is not all zeros.
        assert np.any(np.abs(np.triu(factor, k=1)) > 1e-10)

    def test_indefinite_input_rejected(self, indefinite_covariance):
        with pytest.raises(ColoringError):
            coloring_matrix_eigen(indefinite_covariance)


class TestColoringMatrixCholesky:
    def test_reconstructs_pd_matrix(self, eq23_covariance):
        factor = coloring_matrix_cholesky(eq23_covariance)
        assert np.allclose(factor @ factor.conj().T, eq23_covariance, atol=1e-12)

    def test_lower_triangular(self, eq23_covariance):
        factor = coloring_matrix_cholesky(eq23_covariance)
        assert np.allclose(np.triu(factor, k=1), 0.0)

    def test_fails_on_singular(self):
        with pytest.raises(CholeskyError):
            coloring_matrix_cholesky(np.ones((3, 3)))


class TestColoringMatrixSvd:
    def test_reconstructs_pd_matrix(self, eq22_covariance):
        factor = coloring_matrix_svd(eq22_covariance)
        assert np.allclose(factor @ factor.conj().T, eq22_covariance, atol=1e-10)

    def test_reconstructs_singular_matrix(self):
        matrix = np.ones((3, 3), dtype=complex)
        factor = coloring_matrix_svd(matrix)
        assert np.allclose(factor @ factor.conj().T, matrix, atol=1e-10)

    def test_rejects_indefinite(self, indefinite_covariance):
        with pytest.raises(ColoringError):
            coloring_matrix_svd(indefinite_covariance)


class TestComputeColoring:
    def test_pd_request_not_repaired(self, eq22_covariance):
        decomp = compute_coloring(eq22_covariance)
        assert not decomp.was_repaired
        assert np.allclose(decomp.effective_covariance, eq22_covariance)

    def test_indefinite_request_repaired_to_clip(self, indefinite_covariance):
        decomp = compute_coloring(indefinite_covariance)
        assert decomp.was_repaired
        assert np.allclose(
            decomp.effective_covariance,
            clip_negative_eigenvalues(indefinite_covariance),
            atol=1e-12,
        )

    def test_coloring_realizes_effective_covariance(self, indefinite_covariance):
        decomp = compute_coloring(indefinite_covariance)
        assert decomp.reconstruction_error() < 1e-10

    def test_epsilon_psd_method_passthrough(self, indefinite_covariance):
        decomp = compute_coloring(indefinite_covariance, psd_method="epsilon", epsilon=1e-3)
        assert decomp.extra["psd_method"] == "epsilon"
        assert np.min(np.linalg.eigvalsh(decomp.effective_covariance)) > 0

    def test_cholesky_method_on_pd_matrix(self, eq23_covariance):
        decomp = compute_coloring(eq23_covariance, method="cholesky")
        assert decomp.method == "cholesky"
        assert decomp.reconstruction_error() < 1e-10

    def test_cholesky_method_fails_on_exactly_singular(self):
        # The fully-correlated (all-ones) covariance is PSD but singular, so it
        # passes the forcing step untouched and then breaks the Cholesky path.
        with pytest.raises(CholeskyError):
            compute_coloring(np.ones((3, 3), dtype=complex), method="cholesky")

    def test_unknown_method_rejected(self, eq22_covariance):
        with pytest.raises(ValueError):
            compute_coloring(eq22_covariance, method="qr")

    def test_eigen_and_svd_realize_same_covariance(self, eq22_covariance):
        eigen = compute_coloring(eq22_covariance, method="eigen")
        svd = compute_coloring(eq22_covariance, method="svd")
        assert np.allclose(
            eigen.coloring_matrix @ eigen.coloring_matrix.conj().T,
            svd.coloring_matrix @ svd.coloring_matrix.conj().T,
            atol=1e-10,
        )
