"""Unit tests for the Jakes spectral correlation model (Eq. 3-4, Eq. 22)."""

import numpy as np
import pytest
from scipy.special import j0

from repro.channels import SpectralCorrelationModel, spectral_covariance_pair
from repro.channels.spectral import spectral_covariance_components
from repro.exceptions import DimensionError, SpecificationError


class TestSpectralCovariancePair:
    def test_zero_delay_zero_separation_gives_half_power(self):
        rxx, ryy, rxy, ryx = spectral_covariance_pair(
            power=2.0, max_doppler_hz=50.0, delay_s=0.0,
            frequency_separation_hz=0.0, rms_delay_spread_s=1e-6,
        )
        assert rxx == pytest.approx(1.0)  # sigma^2 / 2
        assert ryy == rxx
        assert rxy == 0.0 and ryx == 0.0

    def test_symmetry_relations(self):
        rxx, ryy, rxy, ryx = spectral_covariance_pair(1.0, 50.0, 1e-3, 200e3, 1e-6)
        assert rxx == ryy
        assert rxy == -ryx

    def test_eq3_formula(self):
        power, fm, tau, df, st = 1.0, 50.0, 1e-3, 200e3, 1e-6
        rxx, _, rxy, _ = spectral_covariance_pair(power, fm, tau, df, st)
        dws = 2 * np.pi * df * st
        expected_rxx = power * j0(2 * np.pi * fm * tau) / (2 * (1 + dws**2))
        assert rxx == pytest.approx(expected_rxx)
        assert rxy == pytest.approx(-dws * expected_rxx)

    def test_sign_flips_with_frequency_order(self):
        _, _, rxy_pos, _ = spectral_covariance_pair(1.0, 50.0, 1e-3, 200e3, 1e-6)
        _, _, rxy_neg, _ = spectral_covariance_pair(1.0, 50.0, 1e-3, -200e3, 1e-6)
        assert rxy_pos == pytest.approx(-rxy_neg)

    def test_larger_separation_reduces_correlation(self):
        rxx_near, *_ = spectral_covariance_pair(1.0, 50.0, 0.0, 100e3, 1e-6)
        rxx_far, *_ = spectral_covariance_pair(1.0, 50.0, 0.0, 800e3, 1e-6)
        assert abs(rxx_far) < abs(rxx_near)

    def test_invalid_power(self):
        with pytest.raises(SpecificationError):
            spectral_covariance_pair(0.0, 50.0, 0.0, 0.0, 1e-6)

    def test_negative_delay_spread(self):
        with pytest.raises(SpecificationError):
            spectral_covariance_pair(1.0, 50.0, 0.0, 0.0, -1e-6)


class TestSpectralCovarianceComponents:
    @pytest.fixture()
    def paper_inputs(self):
        freqs = 900e6 + 200e3 * np.array([2.0, 1.0, 0.0])
        delays = np.array([[0, 1e-3, 4e-3], [1e-3, 0, 3e-3], [4e-3, 3e-3, 0]])
        return np.ones(3), 50.0, delays, freqs, 1e-6

    def test_shapes(self, paper_inputs):
        rxx, ryy, rxy, ryx = spectral_covariance_components(*paper_inputs)
        assert rxx.shape == ryy.shape == rxy.shape == ryx.shape == (3, 3)

    def test_zero_diagonals(self, paper_inputs):
        rxx, _, rxy, _ = spectral_covariance_components(*paper_inputs)
        assert np.allclose(np.diag(rxx), 0.0)
        assert np.allclose(np.diag(rxy), 0.0)

    def test_rxx_symmetric_rxy_antisymmetric(self, paper_inputs):
        rxx, _, rxy, ryx = spectral_covariance_components(*paper_inputs)
        assert np.allclose(rxx, rxx.T)
        assert np.allclose(rxy, -rxy.T)
        assert np.allclose(ryx, -rxy)

    def test_matches_eq22_values(self, paper_inputs):
        rxx, ryy, rxy, ryx = spectral_covariance_components(*paper_inputs)
        # Entry (1,2): 2*Rxx = 0.3782, -(Rxy - Ryx) = 0.4753
        assert 2 * rxx[0, 1] == pytest.approx(0.3782, abs=5e-4)
        assert -(rxy[0, 1] - ryx[0, 1]) == pytest.approx(0.4753, abs=5e-4)
        # Entry (2,3)
        assert 2 * rxx[1, 2] == pytest.approx(0.3063, abs=5e-4)
        # Entry (1,3)
        assert 2 * rxx[0, 2] == pytest.approx(0.0878, abs=5e-4)

    def test_unequal_powers_use_geometric_mean(self):
        powers = np.array([1.0, 4.0])
        freqs = np.array([900e6, 900.2e6])
        delays = np.zeros((2, 2))
        rxx, *_ = spectral_covariance_components(powers, 50.0, delays, freqs, 1e-6)
        rxx_unit, *_ = spectral_covariance_components(
            np.ones(2), 50.0, delays, freqs, 1e-6
        )
        assert rxx[0, 1] == pytest.approx(2.0 * rxx_unit[0, 1])

    def test_asymmetric_delay_matrix_rejected(self):
        delays = np.array([[0.0, 1e-3], [2e-3, 0.0]])
        with pytest.raises(SpecificationError):
            spectral_covariance_components(
                np.ones(2), 50.0, delays, np.array([900e6, 900.2e6]), 1e-6
            )

    def test_wrong_shape_rejected(self):
        with pytest.raises(DimensionError):
            spectral_covariance_components(
                np.ones(3), 50.0, np.zeros((2, 2)), np.array([1e9, 2e9, 3e9]), 1e-6
            )


class TestSpectralCorrelationModel:
    def test_n_branches(self):
        model = SpectralCorrelationModel(
            frequencies_hz=np.array([1e9, 1.0002e9]),
            delays_s=np.zeros((2, 2)),
            max_doppler_hz=10.0,
            rms_delay_spread_s=1e-6,
        )
        assert model.n_branches == 2

    def test_validation_of_shapes(self):
        with pytest.raises(DimensionError):
            SpectralCorrelationModel(
                frequencies_hz=np.array([1e9, 2e9]),
                delays_s=np.zeros((3, 3)),
                max_doppler_hz=10.0,
                rms_delay_spread_s=1e-6,
            )

    def test_negative_doppler_rejected(self):
        with pytest.raises(SpecificationError):
            SpectralCorrelationModel(
                frequencies_hz=np.array([1e9]),
                delays_s=np.zeros((1, 1)),
                max_doppler_hz=-1.0,
                rms_delay_spread_s=1e-6,
            )

    def test_components_delegate(self):
        model = SpectralCorrelationModel(
            frequencies_hz=np.array([1e9, 1.0002e9]),
            delays_s=np.full((2, 2), 1e-3) - np.eye(2) * 1e-3,
            max_doppler_hz=10.0,
            rms_delay_spread_s=1e-6,
        )
        rxx, ryy, rxy, ryx = model.covariance_components(np.ones(2))
        assert rxx.shape == (2, 2)
        assert rxx[0, 1] != 0.0
