"""Unit tests for the Young-Beaulieu Doppler filter (Eq. 19, 21)."""

import numpy as np
import pytest
from scipy.special import j0

from repro.channels import (
    filter_autocorrelation,
    filter_output_variance,
    jakes_doppler_psd,
    young_beaulieu_filter,
)
from repro.channels.doppler import validate_doppler_parameters
from repro.exceptions import DopplerError, FilterDesignError


class TestValidateDopplerParameters:
    def test_paper_parameters_km(self):
        # Section 6: M = 4096, fm = 0.05 -> km = 204.
        assert validate_doppler_parameters(4096, 0.05) == 204

    def test_doppler_out_of_range(self):
        with pytest.raises(DopplerError):
            validate_doppler_parameters(1024, 0.6)
        with pytest.raises(DopplerError):
            validate_doppler_parameters(1024, 0.0)

    def test_m_too_small(self):
        with pytest.raises(DopplerError):
            validate_doppler_parameters(4, 0.1)

    def test_passband_needs_at_least_one_bin(self):
        with pytest.raises(FilterDesignError):
            validate_doppler_parameters(64, 0.01)

    def test_km_uses_floor(self):
        # k_m = floor(f_m * M): 0.07 * 128 = 8.96 -> 8.
        assert validate_doppler_parameters(128, 0.07) == 8

    def test_doppler_just_below_half_is_accepted(self):
        # For any f_m < 0.5 the band edges cannot collide (2 floor(f_m M) < M).
        assert validate_doppler_parameters(16, 0.49) == 7


class TestYoungBeaulieuFilter:
    @pytest.fixture(scope="class")
    def paper_filter(self):
        return young_beaulieu_filter(4096, 0.05)

    def test_length(self, paper_filter):
        assert paper_filter.shape == (4096,)

    def test_dc_coefficient_zero(self, paper_filter):
        assert paper_filter[0] == 0.0

    def test_real_and_non_negative(self, paper_filter):
        assert not np.iscomplexobj(paper_filter)
        assert np.all(paper_filter >= 0.0)

    def test_symmetry_f_k_equals_f_m_minus_k(self, paper_filter):
        # Eq. (21) is symmetric: F[k] == F[M-k] for k = 1..M-1.
        assert np.allclose(paper_filter[1:], paper_filter[1:][::-1])

    def test_stopband_is_zero(self, paper_filter):
        km = 204
        assert np.all(paper_filter[km + 1 : 4096 - km] == 0.0)

    def test_passband_is_positive(self, paper_filter):
        km = 204
        assert np.all(paper_filter[1 : km + 1] > 0.0)

    def test_interior_matches_eq21(self, paper_filter):
        m, fm = 4096, 0.05
        for k in (1, 50, 150, 203):
            expected = np.sqrt(1.0 / (2.0 * np.sqrt(1.0 - (k / (m * fm)) ** 2)))
            assert paper_filter[k] == pytest.approx(expected)

    def test_edge_coefficient_matches_eq21(self, paper_filter):
        km = 204
        expected = np.sqrt(
            (km / 2.0) * (np.pi / 2.0 - np.arctan((km - 1) / np.sqrt(2.0 * km - 1.0)))
        )
        assert paper_filter[km] == pytest.approx(expected)
        assert paper_filter[4096 - km] == pytest.approx(expected)

    def test_coefficients_grow_toward_band_edge(self, paper_filter):
        # The Jakes spectrum diverges at the band edge, so |F| increases with k
        # inside the passband interior.
        km = 204
        interior = paper_filter[1:km]
        assert np.all(np.diff(interior) >= 0)

    def test_small_filter_design(self):
        coeffs = young_beaulieu_filter(64, 0.1)
        assert coeffs.shape == (64,)
        assert coeffs[0] == 0.0


class TestFilterOutputVariance:
    def test_matches_eq19(self):
        coeffs = young_beaulieu_filter(1024, 0.05)
        sigma_orig2 = 0.5
        expected = 2.0 * sigma_orig2 * np.sum(coeffs**2) / 1024**2
        assert filter_output_variance(coeffs, sigma_orig2) == pytest.approx(expected)

    def test_scales_linearly_with_input_variance(self):
        coeffs = young_beaulieu_filter(512, 0.05)
        assert filter_output_variance(coeffs, 1.0) == pytest.approx(
            2.0 * filter_output_variance(coeffs, 0.5)
        )

    def test_invalid_input_variance(self):
        coeffs = young_beaulieu_filter(512, 0.05)
        with pytest.raises(DopplerError):
            filter_output_variance(coeffs, 0.0)

    def test_empty_filter_rejected(self):
        with pytest.raises(FilterDesignError):
            filter_output_variance(np.array([]), 0.5)

    def test_matches_empirical_output_variance(self):
        # Generate via the IDFT construction directly and verify Eq. (19).
        m, fm, sigma_orig2 = 2048, 0.05, 0.5
        coeffs = young_beaulieu_filter(m, fm)
        rng = np.random.default_rng(0)
        variances = []
        for _ in range(50):
            a = rng.normal(0.0, np.sqrt(sigma_orig2), m)
            b = rng.normal(0.0, np.sqrt(sigma_orig2), m)
            u = np.fft.ifft(coeffs * (a - 1j * b))
            variances.append(np.mean(np.abs(u) ** 2))
        assert np.mean(variances) == pytest.approx(
            filter_output_variance(coeffs, sigma_orig2), rel=0.05
        )


class TestFilterAutocorrelation:
    def test_normalized_matches_bessel(self):
        coeffs = young_beaulieu_filter(4096, 0.05)
        r_rr, _ = filter_autocorrelation(coeffs, 0.5, max_lag=50)
        normalized = r_rr / r_rr[0]
        reference = j0(2 * np.pi * 0.05 * np.arange(51))
        assert np.max(np.abs(normalized - reference)) < 0.03

    def test_cross_correlation_vanishes_for_real_filter(self):
        coeffs = young_beaulieu_filter(2048, 0.1)
        r_rr, r_ri = filter_autocorrelation(coeffs, 0.5, max_lag=20)
        assert np.max(np.abs(r_ri)) < 1e-12 * r_rr[0]

    def test_lag_zero_is_half_output_variance(self):
        coeffs = young_beaulieu_filter(1024, 0.05)
        r_rr, _ = filter_autocorrelation(coeffs, 0.5, max_lag=0)
        assert 2 * r_rr[0] == pytest.approx(filter_output_variance(coeffs, 0.5))

    def test_invalid_lag(self):
        coeffs = young_beaulieu_filter(64, 0.1)
        with pytest.raises(ValueError):
            filter_autocorrelation(coeffs, 0.5, max_lag=64)


class TestJakesDopplerPsd:
    def test_zero_outside_band(self):
        psd = jakes_doppler_psd(np.array([-80.0, 80.0]), max_doppler_hz=50.0)
        assert np.allclose(psd, 0.0)

    def test_partial_integral_matches_arcsine_law(self):
        # int_{-a}^{a} S(f) df = (2/pi) arcsin(a / Fm); use a = Fm/2 where the
        # integrand is smooth so the numerical quadrature is accurate.
        freqs = np.linspace(-25.0, 25.0, 100_001)
        psd = jakes_doppler_psd(freqs, 50.0)
        integral = np.trapezoid(psd, freqs)
        assert integral == pytest.approx((2.0 / np.pi) * np.arcsin(0.5), abs=1e-3)

    def test_u_shape_minimum_at_zero(self):
        freqs = np.array([0.0, 25.0, 45.0])
        psd = jakes_doppler_psd(freqs, 50.0)
        assert psd[0] < psd[1] < psd[2]

    def test_invalid_doppler(self):
        with pytest.raises(DopplerError):
            jakes_doppler_psd(np.array([0.0]), 0.0)
