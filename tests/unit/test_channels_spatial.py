"""Unit tests for the Salz-Winters spatial correlation model (Eq. 5-7, Eq. 23)."""

import numpy as np
import pytest
from scipy.special import j0

from repro.channels import (
    SpatialCorrelationModel,
    spatial_correlation_imag,
    spatial_correlation_real,
)
from repro.channels.spatial import spatial_covariance_components
from repro.exceptions import DimensionError, SpecificationError


class TestSpatialCorrelationReal:
    def test_zero_separation_is_unity(self):
        value = spatial_correlation_real(0, 1.0, 0.0, np.pi / 18)
        assert value == pytest.approx(1.0)

    def test_paper_adjacent_value(self):
        # Eq. (23): adjacent antennas at D/lambda = 1, Delta = 10 deg, Phi = 0.
        value = spatial_correlation_real(1, 1.0, 0.0, np.pi / 18)
        assert value == pytest.approx(0.8123, abs=2e-4)

    def test_paper_two_apart_value(self):
        value = spatial_correlation_real(2, 1.0, 0.0, np.pi / 18)
        assert value == pytest.approx(0.3730, abs=2e-4)

    def test_symmetric_in_separation_for_phi_zero(self):
        forward = spatial_correlation_real(1, 1.0, 0.0, np.pi / 18)
        backward = spatial_correlation_real(-1, 1.0, 0.0, np.pi / 18)
        assert forward == pytest.approx(backward)

    def test_full_scattering_reduces_to_bessel(self):
        # Delta = pi (isotropic scattering): R~xx -> J0(z d), the Clarke limit.
        value = spatial_correlation_real(1, 0.5, 0.0, np.pi)
        assert value == pytest.approx(float(j0(2 * np.pi * 0.5)), abs=1e-6)

    def test_wider_spread_decorrelates(self):
        narrow = spatial_correlation_real(1, 1.0, 0.0, np.pi / 36)
        wide = spatial_correlation_real(1, 1.0, 0.0, np.pi / 2)
        assert abs(wide) < abs(narrow)

    def test_invalid_angular_spread(self):
        with pytest.raises(SpecificationError):
            spatial_correlation_real(1, 1.0, 0.0, 0.0)

    def test_invalid_mean_angle(self):
        with pytest.raises(SpecificationError):
            spatial_correlation_real(1, 1.0, 4.0, np.pi / 18)

    def test_negative_spacing_rejected(self):
        with pytest.raises(SpecificationError):
            spatial_correlation_real(1, -1.0, 0.0, np.pi / 18)


class TestSpatialCorrelationImag:
    def test_zero_for_broadside(self):
        # Phi = 0 makes every sin((2m+1) Phi) factor vanish.
        assert spatial_correlation_imag(1, 1.0, 0.0, np.pi / 18) == pytest.approx(0.0)

    def test_nonzero_off_broadside(self):
        value = spatial_correlation_imag(1, 1.0, np.pi / 4, np.pi / 18)
        assert abs(value) > 0.01

    def test_odd_in_separation(self):
        forward = spatial_correlation_imag(1, 1.0, np.pi / 4, np.pi / 18)
        backward = spatial_correlation_imag(-1, 1.0, np.pi / 4, np.pi / 18)
        assert forward == pytest.approx(-backward)

    def test_odd_in_mean_angle(self):
        plus = spatial_correlation_imag(1, 1.0, np.pi / 6, np.pi / 18)
        minus = spatial_correlation_imag(1, 1.0, -np.pi / 6, np.pi / 18)
        assert plus == pytest.approx(-minus)


class TestSpatialCovarianceComponents:
    def test_eq23_assembly(self):
        rxx, ryy, rxy, ryx = spatial_covariance_components(
            np.ones(3), 1.0, 0.0, np.pi / 18
        )
        # mu_{k,j} = 2 Rxx for Phi = 0; adjacent entries should equal 0.8123.
        assert 2 * rxx[0, 1] == pytest.approx(0.8123, abs=2e-4)
        assert 2 * rxx[0, 2] == pytest.approx(0.3730, abs=2e-4)
        assert np.allclose(rxy, 0.0)
        assert np.allclose(ryx, 0.0)

    def test_power_scaling(self):
        rxx_unit, *_ = spatial_covariance_components(np.ones(2), 1.0, 0.0, np.pi / 18)
        rxx_scaled, *_ = spatial_covariance_components(
            np.array([4.0, 4.0]), 1.0, 0.0, np.pi / 18
        )
        assert rxx_scaled[0, 1] == pytest.approx(4.0 * rxx_unit[0, 1])

    def test_zero_diagonal(self):
        rxx, *_ = spatial_covariance_components(np.ones(3), 1.0, 0.0, np.pi / 18)
        assert np.allclose(np.diag(rxx), 0.0)

    def test_invalid_powers(self):
        with pytest.raises(SpecificationError):
            spatial_covariance_components(np.array([1.0, -1.0]), 1.0, 0.0, np.pi / 18)


class TestSpatialCorrelationModel:
    def test_normalized_correlation_complex_value(self):
        model = SpatialCorrelationModel(
            n_antennas=2, spacing_wavelengths=1.0,
            mean_angle_rad=np.pi / 4, angular_spread_rad=np.pi / 18,
        )
        rho = model.normalized_correlation(1)
        assert isinstance(rho, complex)
        assert abs(rho) <= 1.01

    def test_covariance_components_shape_check(self):
        model = SpatialCorrelationModel(n_antennas=3, spacing_wavelengths=1.0)
        with pytest.raises(DimensionError):
            model.covariance_components(np.ones(2))

    def test_invalid_antenna_count(self):
        with pytest.raises(SpecificationError):
            SpatialCorrelationModel(n_antennas=0, spacing_wavelengths=1.0)

    def test_n_branches_alias(self):
        model = SpatialCorrelationModel(n_antennas=5, spacing_wavelengths=0.5)
        assert model.n_branches == 5
