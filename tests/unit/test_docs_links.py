"""Intra-repo link checker for the markdown docs.

Every relative link in README, ROADMAP, and ``docs/`` must point at a file
(or directory) that exists in the repository — a rename or a typo'd path
fails here (and in the CI ``docs`` job, which runs exactly this module)
instead of shipping a dead link.  External URLs and pure ``#anchor`` links
are out of scope; fenced code blocks and inline code spans are stripped
before matching so code like ``blocks[0](...)`` is never mistaken for a
link.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

#: The documentation set covered by the checker (and the CI docs job).
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", REPO_ROOT / "ROADMAP.md"]
    + list((REPO_ROOT / "docs").glob("**/*.md"))
)

_FENCE = re.compile(r"^(```|~~~).*?^\1\s*$", re.MULTILINE | re.DOTALL)
_INLINE_CODE = re.compile(r"`[^`\n]*`")
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")


def _strip_code(markdown: str) -> str:
    return _INLINE_CODE.sub("", _FENCE.sub("", markdown))


def relative_link_targets(path: Path):
    """Yield ``(target, resolved_path)`` for every intra-repo link in a file."""
    for target in _LINK.findall(_strip_code(path.read_text(encoding="utf8"))):
        if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):  # http:, mailto:, ...
            continue
        if target.startswith("#"):  # in-page anchor
            continue
        plain = target.split("#", 1)[0]
        if not plain:
            continue
        yield target, (path.parent / plain).resolve()


def test_doc_set_is_nonempty():
    # The checker must actually cover the architecture document.
    assert REPO_ROOT / "docs" / "ARCHITECTURE.md" in DOC_FILES


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: str(p.relative_to(REPO_ROOT)))
def test_intra_repo_links_resolve(doc):
    broken = [
        target
        for target, resolved in relative_link_targets(doc)
        if not resolved.exists()
    ]
    assert not broken, (
        f"{doc.relative_to(REPO_ROOT)} has broken intra-repo links: {broken}"
    )


def test_architecture_doc_is_linked_from_readme_and_roadmap():
    # The acceptance criterion of the docs pass: the architecture document
    # exists and both top-level documents point at it.
    for source in (REPO_ROOT / "README.md", REPO_ROOT / "ROADMAP.md"):
        targets = [resolved for _, resolved in relative_link_targets(source)]
        assert (REPO_ROOT / "docs" / "ARCHITECTURE.md").resolve() in targets, (
            f"{source.name} does not link docs/ARCHITECTURE.md"
        )
