"""Unit tests for covariance assembly (Eq. 12-13) and CovarianceSpec."""

import numpy as np
import pytest

from repro.core import (
    CovarianceSpec,
    build_covariance_matrix,
    correlation_coefficient_matrix,
)
from repro.core.covariance import covariance_entry, decompose_covariance_entry
from repro.exceptions import CovarianceError, DimensionError, PowerError


class TestCovarianceEntry:
    def test_eq13_formula(self):
        entry = covariance_entry(rxx=0.2, ryy=0.2, rxy=-0.1, ryx=0.1)
        assert entry == pytest.approx(0.4 + 0.2j)

    def test_decompose_round_trip(self):
        entry = 0.35 - 0.18j
        rxx, ryy, rxy, ryx = decompose_covariance_entry(entry)
        assert covariance_entry(rxx, ryy, rxy, ryx) == pytest.approx(entry)
        assert rxx == ryy
        assert rxy == -ryx

    def test_real_entry_has_zero_cross_terms(self):
        _, _, rxy, ryx = decompose_covariance_entry(0.8)
        assert rxy == 0.0 and ryx == 0.0


class TestBuildCovarianceMatrix:
    @pytest.fixture()
    def components(self):
        rxx = np.array([[0.0, 0.2], [0.2, 0.0]])
        rxy = np.array([[0.0, -0.1], [0.1, 0.0]])
        return rxx, rxx.copy(), rxy, -rxy

    def test_diagonal_carries_powers(self, components):
        matrix = build_covariance_matrix(np.array([1.0, 2.0]), *components)
        assert np.allclose(np.diag(matrix), [1.0, 2.0])

    def test_off_diagonal_from_eq13(self, components):
        matrix = build_covariance_matrix(np.array([1.0, 1.0]), *components)
        assert matrix[0, 1] == pytest.approx(0.4 + 0.2j)
        assert matrix[1, 0] == pytest.approx(0.4 - 0.2j)

    def test_result_is_hermitian(self, components):
        matrix = build_covariance_matrix(np.array([1.0, 1.0]), *components)
        assert np.allclose(matrix, matrix.conj().T)

    def test_inconsistent_components_rejected(self):
        rxx = np.array([[0.0, 0.2], [0.5, 0.0]])  # not symmetric
        zeros = np.zeros((2, 2))
        with pytest.raises(CovarianceError):
            build_covariance_matrix(np.ones(2), rxx, rxx, zeros, zeros)

    def test_negative_power_rejected(self, components):
        with pytest.raises(PowerError):
            build_covariance_matrix(np.array([1.0, -1.0]), *components)

    def test_shape_mismatch_rejected(self, components):
        with pytest.raises(DimensionError):
            build_covariance_matrix(np.ones(3), *components)


class TestCorrelationCoefficientMatrix:
    def test_unit_diagonal(self, eq22_covariance):
        rho = correlation_coefficient_matrix(eq22_covariance * 3.0)
        assert np.allclose(np.diag(rho), 1.0)

    def test_scale_invariant(self, eq22_covariance):
        assert np.allclose(
            correlation_coefficient_matrix(eq22_covariance),
            correlation_coefficient_matrix(eq22_covariance * 7.5),
        )

    def test_unequal_powers(self):
        matrix = np.array([[4.0, 2.0], [2.0, 1.0]], dtype=complex)
        rho = correlation_coefficient_matrix(matrix)
        assert rho[0, 1] == pytest.approx(1.0)

    def test_non_positive_diagonal_rejected(self):
        with pytest.raises(CovarianceError):
            correlation_coefficient_matrix(np.array([[0.0, 0.1], [0.1, 1.0]]))


class TestCovarianceSpec:
    def test_from_covariance_matrix_reads_diagonal(self, eq22_covariance):
        spec = CovarianceSpec.from_covariance_matrix(eq22_covariance)
        assert np.allclose(spec.gaussian_variances, 1.0)
        assert spec.n_branches == 3

    def test_from_components_matches_direct_build(self):
        rxx = np.array([[0.0, 0.3], [0.3, 0.0]])
        zeros = np.zeros((2, 2))
        spec = CovarianceSpec.from_components(np.array([1.0, 2.0]), rxx, rxx, zeros, zeros)
        assert spec.matrix[0, 1] == pytest.approx(0.6)
        assert spec.matrix[1, 1] == pytest.approx(2.0)

    def test_from_envelope_variances_applies_eq11(self):
        rho = np.eye(2, dtype=complex)
        rho[0, 1] = rho[1, 0] = 0.5
        spec = CovarianceSpec.from_envelope_variances(np.array([1.0, 1.0]), rho)
        expected_power = 1.0 / (1 - np.pi / 4)
        assert np.allclose(spec.gaussian_variances, expected_power)
        assert spec.envelope_variances is not None
        assert spec.matrix[0, 1] == pytest.approx(0.5 * expected_power)

    def test_from_envelope_variances_requires_unit_diagonal(self):
        bad_rho = np.array([[2.0, 0.0], [0.0, 2.0]], dtype=complex)
        with pytest.raises(CovarianceError):
            CovarianceSpec.from_envelope_variances(np.ones(2), bad_rho)

    def test_uncorrelated_builder(self):
        spec = CovarianceSpec.uncorrelated(np.array([1.0, 2.0, 3.0]))
        assert np.allclose(spec.matrix, np.diag([1.0, 2.0, 3.0]))

    def test_non_hermitian_matrix_rejected(self):
        matrix = np.array([[1.0, 0.5], [0.1, 1.0]], dtype=complex)
        with pytest.raises(CovarianceError):
            CovarianceSpec.from_covariance_matrix(matrix)

    def test_diagonal_variance_consistency_enforced(self, eq22_covariance):
        with pytest.raises(CovarianceError):
            CovarianceSpec(matrix=eq22_covariance, gaussian_variances=np.full(3, 2.0))

    def test_is_positive_semidefinite(self, eq22_covariance, indefinite_covariance):
        assert CovarianceSpec.from_covariance_matrix(eq22_covariance).is_positive_semidefinite()
        assert not CovarianceSpec.from_covariance_matrix(
            indefinite_covariance
        ).is_positive_semidefinite()

    def test_correlation_coefficients(self, eq23_covariance):
        spec = CovarianceSpec.from_covariance_matrix(eq23_covariance)
        rho = spec.correlation_coefficients()
        assert rho[0, 1] == pytest.approx(0.8123, abs=1e-4)

    def test_implied_envelope_variances(self):
        spec = CovarianceSpec.uncorrelated(np.array([2.0]))
        assert spec.implied_envelope_variances()[0] == pytest.approx(2.0 * (1 - np.pi / 4))

    def test_with_metadata_merges(self, eq22_spec):
        extended = eq22_spec.with_metadata(source="test")
        assert extended.metadata["source"] == "test"
        assert "source" not in eq22_spec.metadata

    def test_wrong_envelope_shape_rejected(self, eq22_covariance):
        with pytest.raises(DimensionError):
            CovarianceSpec(
                matrix=eq22_covariance,
                gaussian_variances=np.ones(3),
                envelope_variances=np.ones(2),
            )
