"""Unit tests for repro.channels.geometry."""

import numpy as np
import pytest

from repro.channels import (
    max_doppler_frequency,
    normalized_doppler,
    uniform_linear_array_positions,
    wavelength,
)
from repro.channels.geometry import SPEED_OF_LIGHT, kmh_to_ms
from repro.exceptions import SpecificationError


class TestWavelength:
    def test_gsm900_wavelength(self):
        assert wavelength(900e6) == pytest.approx(0.333, rel=1e-2)

    def test_scales_inversely_with_frequency(self):
        assert wavelength(1e9) == pytest.approx(wavelength(2e9) * 2)

    def test_invalid_frequency(self):
        with pytest.raises(SpecificationError):
            wavelength(0.0)


class TestMaxDoppler:
    def test_paper_scenario_60kmh_900mhz(self):
        # The paper quotes Fm = 50 Hz for 900 MHz at 60 km/h (using c ~ 3e8).
        speed = kmh_to_ms(60.0)
        fm = max_doppler_frequency(speed, 900e6)
        assert fm == pytest.approx(50.0, rel=0.01)

    def test_zero_speed_gives_zero_doppler(self):
        assert max_doppler_frequency(0.0, 2e9) == 0.0

    def test_negative_speed_raises(self):
        with pytest.raises(SpecificationError):
            max_doppler_frequency(-1.0, 2e9)

    def test_formula(self):
        assert max_doppler_frequency(30.0, 1e9) == pytest.approx(30.0 * 1e9 / SPEED_OF_LIGHT)


class TestNormalizedDoppler:
    def test_paper_value(self):
        assert normalized_doppler(50.0, 1000.0) == pytest.approx(0.05)

    def test_invalid_sampling_frequency(self):
        with pytest.raises(SpecificationError):
            normalized_doppler(50.0, 0.0)

    def test_negative_doppler_rejected(self):
        with pytest.raises(SpecificationError):
            normalized_doppler(-1.0, 1000.0)


class TestArrayPositions:
    def test_spacing_and_count(self):
        positions = uniform_linear_array_positions(4, 0.5)
        assert np.allclose(positions, [0.0, 0.5, 1.0, 1.5])

    def test_single_antenna(self):
        assert np.allclose(uniform_linear_array_positions(1, 1.0), [0.0])

    def test_invalid_count(self):
        with pytest.raises(SpecificationError):
            uniform_linear_array_positions(0, 1.0)

    def test_negative_spacing(self):
        with pytest.raises(SpecificationError):
            uniform_linear_array_positions(3, -1.0)

    def test_kmh_conversion(self):
        assert kmh_to_ms(36.0) == pytest.approx(10.0)
