"""Unit tests for repro.signal.levels (dB scaling, LCR, AFD)."""

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.signal import (
    amplitude_to_db,
    average_fade_duration,
    db_to_amplitude,
    db_to_power,
    envelope_db_around_rms,
    level_crossing_rate,
    power_to_db,
    rms,
    theoretical_afd,
    theoretical_lcr,
)


class TestDbConversions:
    def test_amplitude_round_trip(self):
        values = np.array([0.1, 1.0, 3.0, 10.0])
        assert np.allclose(db_to_amplitude(amplitude_to_db(values)), values)

    def test_power_round_trip(self):
        values = np.array([0.5, 1.0, 2.0])
        assert np.allclose(db_to_power(power_to_db(values)), values)

    def test_known_values(self):
        assert amplitude_to_db(10.0) == pytest.approx(20.0)
        assert power_to_db(10.0) == pytest.approx(10.0)
        assert db_to_amplitude(6.0) == pytest.approx(1.9953, rel=1e-3)

    def test_zero_amplitude_is_finite(self):
        assert np.isfinite(amplitude_to_db(0.0))

    def test_rms_known_value(self):
        assert rms(np.array([3.0, 4.0])) == pytest.approx(np.sqrt(12.5))


class TestEnvelopeDbAroundRms:
    def test_constant_envelope_is_zero_db(self):
        assert np.allclose(envelope_db_around_rms(np.full(100, 5.0)), 0.0)

    def test_two_branch_independent_normalization(self):
        envelopes = np.vstack([np.full(10, 1.0), np.full(10, 100.0)])
        db = envelope_db_around_rms(envelopes)
        assert np.allclose(db, 0.0)

    def test_1d_input_keeps_shape(self):
        out = envelope_db_around_rms(np.array([1.0, 2.0, 3.0]))
        assert out.shape == (3,)

    def test_rejects_3d(self):
        with pytest.raises(DimensionError):
            envelope_db_around_rms(np.ones((2, 2, 2)))


class TestLevelCrossingRate:
    def test_simple_sine_crossings(self):
        # One positive-going crossing of level 0 per period.
        t = np.arange(0, 10, 0.01)
        envelope = np.sin(2 * np.pi * t) + 1.5  # oscillates around 1.5
        lcr = level_crossing_rate(envelope, threshold=1.5, sample_rate=100.0)
        assert lcr == pytest.approx(1.0, rel=0.15)

    def test_no_crossings_above_max(self):
        envelope = np.abs(np.sin(np.linspace(0, 10, 500))) + 0.1
        assert level_crossing_rate(envelope, threshold=5.0) == 0.0

    def test_requires_two_samples(self):
        with pytest.raises(DimensionError):
            level_crossing_rate(np.array([1.0]), threshold=0.5)


class TestAverageFadeDuration:
    def test_never_below_threshold_returns_zero(self):
        envelope = np.full(100, 2.0)
        assert average_fade_duration(envelope, threshold=1.0) == 0.0

    def test_square_wave_duration(self):
        # 50 samples below, 50 above, repeated: each fade lasts 50 samples.
        envelope = np.tile(np.concatenate([np.zeros(50), np.ones(50) * 2]), 4)
        afd = average_fade_duration(envelope, threshold=1.0, sample_rate=1.0)
        assert afd == pytest.approx(50.0, rel=0.05)

    def test_requires_two_samples(self):
        with pytest.raises(DimensionError):
            average_fade_duration(np.array([1.0]), threshold=0.5)


class TestTheoreticalFormulas:
    def test_lcr_peak_near_rho_of_0_707(self):
        rho = np.linspace(0.05, 3.0, 400)
        lcr = theoretical_lcr(rho, max_doppler_hz=50.0)
        assert rho[np.argmax(lcr)] == pytest.approx(1.0 / np.sqrt(2.0), abs=0.02)

    def test_lcr_scales_with_doppler(self):
        assert theoretical_lcr(1.0, 100.0) == pytest.approx(2 * theoretical_lcr(1.0, 50.0))

    def test_afd_increases_with_threshold(self):
        afd = theoretical_afd(np.array([0.1, 1.0, 2.0]), max_doppler_hz=50.0)
        assert afd[0] < afd[1] < afd[2]

    def test_lcr_afd_consistency_with_outage_probability(self):
        # For Rayleigh fading, LCR * AFD = P(r < rho * r_rms) = 1 - exp(-rho^2).
        rho = np.array([0.3, 0.7, 1.5])
        product = theoretical_lcr(rho, 50.0) * theoretical_afd(rho, 50.0)
        assert np.allclose(product, 1.0 - np.exp(-(rho**2)), rtol=1e-10)


class TestEmpiricalVsTheoreticalFadeStatistics:
    @pytest.mark.slow
    def test_rayleigh_fading_lcr_close_to_theory(self):
        # Generate Doppler-shaped Rayleigh fading and compare its LCR at the
        # rms level with the theoretical value sqrt(2 pi) f_m rho e^{-rho^2}.
        from repro.channels import IDFTRayleighGenerator

        fm_normalized = 0.02
        generator = IDFTRayleighGenerator(
            n_points=65536, normalized_doppler=fm_normalized, rng=0
        )
        envelope = generator.generate_envelope_block()
        reference = rms(envelope)
        measured = level_crossing_rate(envelope, threshold=reference, sample_rate=1.0)
        expected = float(theoretical_lcr(1.0, fm_normalized))
        assert measured == pytest.approx(expected, rel=0.2)
