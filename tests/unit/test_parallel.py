"""Unit tests for the repro.parallel package."""

import numpy as np
import pytest

from repro.exceptions import ParallelExecutionError, SpecificationError
from repro.parallel import (
    ChunkedGenerator,
    build_worker_tasks,
    monte_carlo_covariance,
    partition_counts,
    run_covariance_ensemble,
    stream_envelope_statistics,
)


class TestPartitionCounts:
    def test_even_split(self):
        assert partition_counts(100, 4) == [25, 25, 25, 25]

    def test_remainder_distributed(self):
        assert partition_counts(10, 3) == [4, 3, 3]

    def test_sum_preserved(self):
        for total, parts in [(7, 2), (1, 5), (1000, 7), (0, 3)]:
            assert sum(partition_counts(total, parts)) == total

    def test_counts_differ_by_at_most_one(self):
        counts = partition_counts(23, 5)
        assert max(counts) - min(counts) <= 1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            partition_counts(-1, 2)
        with pytest.raises(ValueError):
            partition_counts(10, 0)


class TestBuildWorkerTasks:
    def test_counts_sum_to_total(self):
        tasks = build_worker_tasks(1000, 4, seed=0)
        assert sum(t.n_samples for t in tasks) == 1000

    def test_zero_count_workers_dropped(self):
        tasks = build_worker_tasks(2, 5, seed=0)
        assert len(tasks) == 2

    def test_seeds_are_distinct(self):
        tasks = build_worker_tasks(100, 8, seed=0)
        assert len({t.seed for t in tasks}) == len(tasks)

    def test_reproducible(self):
        a = build_worker_tasks(100, 4, seed=3)
        b = build_worker_tasks(100, 4, seed=3)
        assert [t.seed for t in a] == [t.seed for t in b]

    def test_different_root_seed_changes_worker_seeds(self):
        a = build_worker_tasks(100, 4, seed=3)
        b = build_worker_tasks(100, 4, seed=4)
        assert [t.seed for t in a] != [t.seed for t in b]


class TestChunkedGenerator:
    def test_snapshot_chunks(self, eq22_covariance):
        generator = ChunkedGenerator(eq22_covariance, chunk_size=128, rng=0)
        chunks = list(generator.chunks(3))
        assert len(chunks) == 3
        assert all(chunk.samples.shape == (3, 128) for chunk in chunks)

    def test_doppler_chunks_use_idft_block_size(self, eq22_covariance):
        generator = ChunkedGenerator(
            eq22_covariance, normalized_doppler=0.05, n_points=512, rng=0
        )
        chunk = next(iter(generator.chunks(1)))
        assert chunk.samples.shape == (3, 512)
        assert generator.chunk_size == 512

    def test_total_samples(self, eq22_covariance):
        generator = ChunkedGenerator(eq22_covariance, chunk_size=100, rng=0)
        assert generator.total_samples(7) == 700

    def test_invalid_chunk_size(self, eq22_covariance):
        with pytest.raises(SpecificationError):
            ChunkedGenerator(eq22_covariance, chunk_size=0, rng=0)

    def test_invalid_chunk_count(self, eq22_covariance):
        generator = ChunkedGenerator(eq22_covariance, chunk_size=16, rng=0)
        with pytest.raises(SpecificationError):
            list(generator.chunks(0))

    def test_stream_statistics_cover_covariance(self, eq22_covariance):
        generator = ChunkedGenerator(eq22_covariance, chunk_size=20_000, rng=1)
        stats = stream_envelope_statistics(generator, n_chunks=10)
        assert stats.n_samples == 200_000
        assert np.max(np.abs(stats.covariance - eq22_covariance)) < 0.03
        assert np.allclose(stats.envelope_power, 1.0, atol=0.03)
        assert np.allclose(stats.envelope_mean, 0.8862, atol=0.02)


class TestEnsemble:
    def test_sequential_ensemble(self, eq22_covariance):
        result = run_covariance_ensemble(
            eq22_covariance, n_replicas=4, samples_per_replica=20_000, seed=0
        )
        assert result.n_replicas == 4
        assert result.total_samples == 80_000
        assert result.relative_errors.shape == (4,)
        assert result.mean_relative_error < 0.1
        assert result.worst_relative_error < 0.2
        assert np.max(np.abs(result.mean_covariance - eq22_covariance)) < 0.05

    def test_invalid_replica_count(self, eq22_covariance):
        with pytest.raises(ParallelExecutionError):
            run_covariance_ensemble(eq22_covariance, n_replicas=0, samples_per_replica=10)

    def test_invalid_sample_count(self, eq22_covariance):
        with pytest.raises(ParallelExecutionError):
            run_covariance_ensemble(eq22_covariance, n_replicas=2, samples_per_replica=0)

    def test_monte_carlo_covariance_single_worker(self, eq22_covariance):
        estimate = monte_carlo_covariance(eq22_covariance, 100_000, n_workers=1, seed=1)
        assert np.max(np.abs(estimate - eq22_covariance)) < 0.04

    def test_monte_carlo_invalid_total(self, eq22_covariance):
        with pytest.raises(ParallelExecutionError):
            monte_carlo_covariance(eq22_covariance, 0)

    @pytest.mark.slow
    def test_process_pool_ensemble(self, eq22_covariance):
        result = run_covariance_ensemble(
            eq22_covariance,
            n_replicas=4,
            samples_per_replica=10_000,
            seed=2,
            n_workers=2,
        )
        assert result.n_replicas == 4
        assert result.mean_relative_error < 0.15
