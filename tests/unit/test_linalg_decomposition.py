"""Unit tests for repro.linalg.decomposition (ColoringDecomposition)."""

import numpy as np
import pytest

from repro.core.coloring import compute_coloring
from repro.linalg import ColoringDecomposition


class TestColoringDecomposition:
    def test_reconstruction_error_small_for_pd(self, eq22_covariance):
        decomp = compute_coloring(eq22_covariance)
        assert decomp.reconstruction_error() < 1e-10

    def test_approximation_error_zero_when_not_repaired(self, eq22_covariance):
        decomp = compute_coloring(eq22_covariance)
        assert not decomp.was_repaired
        assert decomp.approximation_error() < 1e-12

    def test_approximation_error_positive_when_repaired(self, indefinite_covariance):
        decomp = compute_coloring(indefinite_covariance)
        assert decomp.was_repaired
        assert decomp.approximation_error() > 0.01

    def test_size(self, eq22_covariance):
        assert compute_coloring(eq22_covariance).size == 3

    def test_records_method(self, eq22_covariance):
        assert compute_coloring(eq22_covariance, method="eigen").method == "eigen"

    def test_records_negative_eigenvalue_count(self, indefinite_covariance):
        decomp = compute_coloring(indefinite_covariance)
        assert decomp.negative_eigenvalue_count == 1

    def test_min_eigenvalue_recorded(self, indefinite_covariance):
        decomp = compute_coloring(indefinite_covariance)
        assert decomp.min_eigenvalue == pytest.approx(
            np.min(np.linalg.eigvalsh(indefinite_covariance))
        )

    def test_frozen_dataclass(self, eq22_covariance):
        decomp = compute_coloring(eq22_covariance)
        with pytest.raises((AttributeError, TypeError)):
            decomp.method = "other"  # type: ignore[misc]

    def test_is_coloring_decomposition_instance(self, eq22_covariance):
        assert isinstance(compute_coloring(eq22_covariance), ColoringDecomposition)
