"""Unit tests for repro.signal.spectrum and repro.signal.windows."""

import numpy as np
import pytest

from repro.channels import IDFTRayleighGenerator
from repro.exceptions import DimensionError
from repro.signal import (
    doppler_spectrum_estimate,
    get_window,
    hamming_window,
    hann_window,
    periodogram,
    rectangular_window,
    welch_psd,
)


class TestWindows:
    def test_rectangular_is_all_ones(self):
        assert np.allclose(rectangular_window(8), 1.0)

    def test_hann_starts_at_zero(self):
        assert hann_window(16)[0] == pytest.approx(0.0)

    def test_hann_peak_near_one(self):
        assert np.max(hann_window(64)) == pytest.approx(1.0, abs=0.01)

    def test_hamming_endpoints(self):
        window = hamming_window(32)
        assert window[0] == pytest.approx(0.08, abs=1e-6)

    def test_get_window_by_name(self):
        assert np.allclose(get_window("hann", 8), hann_window(8))
        assert np.allclose(get_window("BOXCAR", 8), rectangular_window(8))

    def test_unknown_window_raises(self):
        with pytest.raises(ValueError):
            get_window("kaiser", 8)

    def test_invalid_length_raises(self):
        with pytest.raises(ValueError):
            hann_window(0)

    def test_length_one_window(self):
        assert np.allclose(hann_window(1), 1.0)


class TestPeriodogram:
    def test_pure_tone_peak_at_tone_frequency(self):
        n = 1024
        tone = np.exp(2j * np.pi * 0.1 * np.arange(n))
        freqs, psd = periodogram(tone)
        assert freqs[np.argmax(psd)] == pytest.approx(0.1, abs=1.0 / n)

    def test_total_power_parseval(self, rng):
        x = rng.normal(size=2048) + 1j * rng.normal(size=2048)
        freqs, psd = periodogram(x)
        df = freqs[1] - freqs[0]
        assert np.sum(psd) * df == pytest.approx(np.mean(np.abs(x) ** 2), rel=1e-10)

    def test_rejects_empty(self):
        with pytest.raises(DimensionError):
            periodogram(np.array([]))


class TestWelchPsd:
    def test_white_noise_flat_spectrum(self, rng):
        x = rng.normal(size=65536) + 1j * rng.normal(size=65536)
        freqs, psd = welch_psd(x, segment_length=256)
        assert np.std(psd) / np.mean(psd) < 0.2

    def test_invalid_segment_length(self, rng):
        with pytest.raises(ValueError):
            welch_psd(rng.normal(size=64), segment_length=128)

    def test_invalid_overlap(self, rng):
        with pytest.raises(ValueError):
            welch_psd(rng.normal(size=64), segment_length=16, overlap=1.0)

    def test_tone_located(self):
        n = 8192
        tone = np.exp(2j * np.pi * 0.2 * np.arange(n))
        freqs, psd = welch_psd(tone, segment_length=512)
        assert abs(freqs[np.argmax(psd)] - 0.2) < 0.01


class TestDopplerSpectrumEstimate:
    def test_shaped_fading_is_band_limited(self):
        generator = IDFTRayleighGenerator(n_points=8192, normalized_doppler=0.05, rng=1)
        samples = generator.generate_block()
        _, _, in_band = doppler_spectrum_estimate(samples, normalized_doppler=0.05)
        assert in_band > 0.95

    def test_white_noise_is_not_band_limited(self, rng):
        samples = rng.normal(size=8192) + 1j * rng.normal(size=8192)
        _, _, in_band = doppler_spectrum_estimate(samples, normalized_doppler=0.05)
        assert in_band < 0.5

    def test_invalid_doppler_raises(self, rng):
        with pytest.raises(ValueError):
            doppler_spectrum_estimate(rng.normal(size=1024), normalized_doppler=0.7)
