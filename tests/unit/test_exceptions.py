"""Unit tests for the exception hierarchy."""

import pytest

from repro import exceptions as exc


class TestHierarchy:
    @pytest.mark.parametrize(
        "subclass",
        [
            exc.SpecificationError,
            exc.DimensionError,
            exc.PowerError,
            exc.CovarianceError,
            exc.NotHermitianError,
            exc.NotPositiveSemiDefiniteError,
            exc.DecompositionError,
            exc.CholeskyError,
            exc.ColoringError,
            exc.DopplerError,
            exc.FilterDesignError,
            exc.GenerationError,
            exc.ValidationError,
            exc.ExperimentError,
            exc.ParallelExecutionError,
        ],
    )
    def test_all_derive_from_repro_error(self, subclass):
        assert issubclass(subclass, exc.ReproError)

    def test_specification_error_is_value_error(self):
        assert issubclass(exc.SpecificationError, ValueError)

    def test_cholesky_error_is_decomposition_error(self):
        assert issubclass(exc.CholeskyError, exc.DecompositionError)

    def test_filter_design_error_is_doppler_error(self):
        assert issubclass(exc.FilterDesignError, exc.DopplerError)

    def test_dimension_and_power_are_specification_errors(self):
        assert issubclass(exc.DimensionError, exc.SpecificationError)
        assert issubclass(exc.PowerError, exc.SpecificationError)


class TestNotPositiveSemiDefiniteError:
    def test_records_min_eigenvalue(self):
        error = exc.NotPositiveSemiDefiniteError("bad matrix", min_eigenvalue=-0.5)
        assert error.min_eigenvalue == -0.5

    def test_min_eigenvalue_defaults_to_none(self):
        error = exc.NotPositiveSemiDefiniteError("bad matrix")
        assert error.min_eigenvalue is None

    def test_can_be_caught_as_covariance_error(self):
        with pytest.raises(exc.CovarianceError):
            raise exc.NotPositiveSemiDefiniteError("bad matrix")
