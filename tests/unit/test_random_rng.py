"""Unit tests for repro.random.rng."""

import numpy as np
import pytest

from repro.config import DEFAULTS
from repro.random import SeedSequenceFactory, ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_int_seed_is_reproducible(self):
        a = ensure_rng(42).normal(size=10)
        b = ensure_rng(42).normal(size=10)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).normal(size=10)
        b = ensure_rng(2).normal(size=10)
        assert not np.allclose(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(7)
        assert ensure_rng(gen) is gen

    def test_none_uses_package_default_seed(self):
        a = ensure_rng(None).normal(size=5)
        b = ensure_rng(DEFAULTS.default_rng_seed).normal(size=5)
        assert np.allclose(a, b)

    def test_none_with_default_seed_override(self):
        a = ensure_rng(None, default_seed=99).normal(size=5)
        b = ensure_rng(99).normal(size=5)
        assert np.allclose(a, b)

    def test_invalid_seed_type_raises(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")  # type: ignore[arg-type]


class TestSpawnRngs:
    def test_returns_requested_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_are_independent_streams(self):
        children = spawn_rngs(0, 2)
        a = children[0].normal(size=100)
        b = children[1].normal(size=100)
        assert not np.allclose(a, b)

    def test_reproducible_from_same_seed(self):
        first = [g.normal(size=4) for g in spawn_rngs(3, 3)]
        second = [g.normal(size=4) for g in spawn_rngs(3, 3)]
        for a, b in zip(first, second):
            assert np.allclose(a, b)

    def test_spawning_from_generator(self):
        parent = np.random.default_rng(5)
        children = spawn_rngs(parent, 2)
        assert len(children) == 2

    def test_zero_children_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, 0)


class TestSeedSequenceFactory:
    def test_same_name_same_seed(self):
        factory = SeedSequenceFactory(10)
        assert factory.seed_for("doppler") == factory.seed_for("doppler")

    def test_different_names_different_seeds(self):
        factory = SeedSequenceFactory(10)
        assert factory.seed_for("a") != factory.seed_for("b")

    def test_name_seed_is_order_independent(self):
        f1 = SeedSequenceFactory(10)
        f1.seed_for("a")
        seed_b_after_a = f1.seed_for("b")
        f2 = SeedSequenceFactory(10)
        seed_b_first = f2.seed_for("b")
        assert seed_b_after_a == seed_b_first

    def test_different_roots_differ(self):
        assert SeedSequenceFactory(1).seed_for("x") != SeedSequenceFactory(2).seed_for("x")

    def test_rng_for_is_reproducible(self):
        a = SeedSequenceFactory(3).rng_for("x").normal(size=4)
        b = SeedSequenceFactory(3).rng_for("x").normal(size=4)
        assert np.allclose(a, b)

    def test_next_rng_advances(self):
        factory = SeedSequenceFactory(3)
        a = factory.next_rng().normal(size=4)
        b = factory.next_rng().normal(size=4)
        assert not np.allclose(a, b)

    def test_assigned_names_recorded(self):
        factory = SeedSequenceFactory(3)
        factory.seed_for("alpha")
        assert "alpha" in factory.assigned_names()

    def test_root_seed_property(self):
        assert SeedSequenceFactory(77).root_seed == 77
