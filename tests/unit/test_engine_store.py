"""Unit tests for the unified artifact store (:mod:`repro.engine.store`).

The store owns the whole disk-tier protocol for every cache — atomic
write-then-rename, digest verification, quarantine-on-corrupt, stale-file
sweeping, LRU byte-bounded eviction — so these tests exercise it directly
through a trivial dump/load pair; the cache-specific behaviour lives in
``test_engine_cache.py`` / ``test_engine_filters.py`` /
``test_engine_plancache.py``.
"""

import os
import time

import numpy as np
import pytest

from repro.engine.store import TMP_SWEEP_AGE_SECONDS, ArtifactStore


def _dump(payload):
    return {"values": np.asarray(payload, dtype=float)}, {"kind": "test"}


def _load(arrays, meta):
    assert meta.get("kind") == "test"
    return arrays["values"]


def _make_store(cache_dir=None, **kwargs):
    return ArtifactStore("widgets", dump=_dump, load=_load, cache_dir=cache_dir, **kwargs)


class TestRoundTrip:
    def test_put_then_lookup_bit_identical(self, tmp_path):
        store = _make_store(tmp_path)
        payload = np.array([1.0, 2.5, -3.25])
        assert store.put("k1", payload)
        fresh_process = _make_store(tmp_path)
        loaded = fresh_process.lookup("k1")
        assert loaded.tobytes() == payload.tobytes()
        assert fresh_process.stats.hits == 1
        assert (tmp_path / "widgets" / "k1.npz").exists()

    def test_absent_key_is_a_counted_miss(self, tmp_path):
        store = _make_store(tmp_path)
        assert store.lookup("nope") is None
        assert store.stats.misses == 1
        assert store.stats.corruptions == 0

    def test_detached_store_is_a_silent_noop(self):
        store = _make_store(None)
        assert not store.put("k", np.ones(3))
        assert store.lookup("k") is None
        stats = store.stats
        assert (stats.hits, stats.misses) == (0, 0)
        assert store.usage() == (0, 0)

    def test_put_is_idempotent_per_key(self, tmp_path, monkeypatch):
        store = _make_store(tmp_path)
        store.put("k1", np.ones(3))
        calls = []
        monkeypatch.setattr(
            ArtifactStore, "_write", lambda self, *a: calls.append(1) or (False, 0)
        )
        for _ in range(5):
            store.put("k1", np.ones(3))
        assert calls == []  # serialization is never re-paid

    def test_failed_dump_keeps_entry_memory_only(self, tmp_path):
        store = ArtifactStore(
            "widgets", dump=lambda payload: None, load=_load, cache_dir=tmp_path
        )
        assert not store.put("k1", object())
        assert store.usage() == (0, 0)

    def test_reserved_member_names_are_rejected(self, tmp_path):
        store = ArtifactStore(
            "widgets",
            dump=lambda payload: ({"__meta__": np.ones(1)}, {}),
            load=_load,
            cache_dir=tmp_path,
        )
        assert not store.put("k1", object())

    def test_non_json_meta_keeps_entry_memory_only(self, tmp_path):
        store = ArtifactStore(
            "widgets",
            dump=lambda payload: ({"values": np.ones(1)}, {"bad": object()}),
            load=_load,
            cache_dir=tmp_path,
        )
        assert not store.put("k1", object())
        assert store.usage() == (0, 0)

    def test_invalid_namespace_and_bound_rejected(self):
        with pytest.raises(ValueError):
            ArtifactStore("", dump=_dump, load=_load)
        with pytest.raises(ValueError):
            ArtifactStore("a/b", dump=_dump, load=_load)
        with pytest.raises(ValueError):
            ArtifactStore("widgets", dump=_dump, load=_load, max_bytes=-1)


class TestVerification:
    """Every defect is a miss that quarantines the file, never an error."""

    def _entry(self, tmp_path):
        (path,) = (tmp_path / "widgets").glob("*.npz")
        return path

    @pytest.fixture()
    def populated(self, tmp_path):
        _make_store(tmp_path).put("k1", np.arange(8.0))
        return tmp_path

    def test_truncated_file_quarantined(self, populated):
        path = self._entry(populated)
        path.write_bytes(path.read_bytes()[:40])
        store = _make_store(populated)
        assert store.lookup("k1") is None
        stats = store.stats
        assert stats.corruptions == 1
        assert stats.misses == 1
        assert not path.exists()  # moved aside, next lookup is a clean miss
        assert path.with_suffix(".quarantine").exists()  # kept for postmortem

    def test_garbage_file_quarantined(self, populated):
        self._entry(populated).write_bytes(b"this is not an npz archive")
        store = _make_store(populated)
        assert store.lookup("k1") is None
        assert store.stats.corruptions == 1

    def test_tampered_payload_fails_digest(self, populated):
        import zipfile

        path = self._entry(populated)
        with zipfile.ZipFile(path) as archive:
            members = {name: archive.read(name) for name in archive.namelist()}
        payload = bytearray(members["values.npy"])
        payload[-1] ^= 0xFF
        members["values.npy"] = bytes(payload)
        with zipfile.ZipFile(path, "w") as archive:
            for name, data in members.items():
                archive.writestr(name, data)
        store = _make_store(populated)
        assert store.lookup("k1") is None
        assert store.stats.corruptions == 1

    def test_format_version_mismatch_is_a_miss(self, populated):
        store = _make_store(populated, format_version=99)
        assert store.lookup("k1") is None
        assert store.stats.corruptions == 1

    def test_key_mismatch_is_a_miss(self, populated):
        # A renamed (or hash-colliding) file must not serve the wrong key.
        path = self._entry(populated)
        os.replace(path, path.with_name("k2.npz"))
        store = _make_store(populated)
        assert store.lookup("k2") is None
        assert store.stats.corruptions == 1

    def test_namespace_mismatch_is_a_miss(self, populated):
        # The same bytes copied into another namespace read as a miss.
        source = self._entry(populated)
        other_dir = populated / "gadgets"
        other_dir.mkdir()
        (other_dir / "k1.npz").write_bytes(source.read_bytes())
        other = ArtifactStore("gadgets", dump=_dump, load=_load, cache_dir=populated)
        assert other.lookup("k1") is None
        assert other.stats.corruptions == 1

    def test_client_load_rejection_is_corruption(self, populated):
        store = ArtifactStore(
            "widgets",
            dump=_dump,
            load=lambda arrays, meta: None,
            cache_dir=populated,
        )
        assert store.lookup("k1") is None
        assert store.stats.corruptions == 1

    def test_quarantined_entry_can_be_respilled(self, populated):
        path = self._entry(populated)
        path.write_bytes(b"garbage")
        store = _make_store(populated)
        assert store.lookup("k1") is None  # quarantines
        assert store.put("k1", np.arange(8.0))  # re-spill after corruption
        fresh = _make_store(populated)
        assert fresh.lookup("k1") is not None


class TestSweeping:
    """Stale ``.tmp`` *and* ``.quarantine`` files are swept on store open."""

    def _stale_and_fresh(self, directory, suffix):
        directory.mkdir(parents=True, exist_ok=True)
        stale = directory / f"dead{suffix}"
        stale.write_bytes(b"old")
        old = time.time() - 2 * TMP_SWEEP_AGE_SECONDS
        os.utime(stale, (old, old))
        fresh = directory / f"live{suffix}"
        fresh.write_bytes(b"recent")
        return stale, fresh

    @pytest.mark.parametrize("suffix", [".tmp", ".quarantine"])
    def test_open_sweeps_stale_leftovers(self, tmp_path, suffix):
        stale, fresh = self._stale_and_fresh(tmp_path / "widgets", suffix)
        _make_store(tmp_path)  # opening the directory sweeps
        assert not stale.exists()
        assert fresh.exists()  # recent files presumed live, kept

    @pytest.mark.parametrize("suffix", [".tmp", ".quarantine"])
    def test_eviction_pass_sweeps_stale_leftovers(self, tmp_path, suffix):
        store = _make_store(tmp_path, max_bytes=1)
        stale, fresh = self._stale_and_fresh(tmp_path / "widgets", suffix)
        store.put("k1", np.arange(64.0))  # 1-byte bound forces an eviction pass
        assert not stale.exists()
        assert fresh.exists()

    def test_repeated_corruption_is_bounded(self, tmp_path):
        # Quarantining the same key overwrites one file; corruption cannot
        # grow the directory by one file per incident.
        store = _make_store(tmp_path)
        for _ in range(5):
            store.put("k1", np.arange(4.0))
            (tmp_path / "widgets" / "k1.npz").write_bytes(b"garbage")
            assert store.lookup("k1") is None
            # The failed lookup cleared the no-spill mark; re-spill for the
            # next round.
        leftovers = list((tmp_path / "widgets").glob("*.quarantine"))
        assert len(leftovers) == 1


class TestEviction:
    def test_lru_byte_bound_evicts_oldest(self, tmp_path):
        store = _make_store(tmp_path, max_bytes=1)
        for index in range(3):
            store.put(f"k{index}", np.arange(16.0))
            now = time.time()
            for path in (tmp_path / "widgets").glob("*.npz"):
                os.utime(path, (now - 100 + index, now - 100 + index))
        assert store.stats.evictions >= 2
        assert len(list((tmp_path / "widgets").glob("*.npz"))) <= 1

    def test_usage_and_clear(self, tmp_path):
        store = _make_store(tmp_path)
        store.put("k1", np.arange(4.0))
        store.put("k2", np.arange(4.0))
        (tmp_path / "widgets" / "leftover.tmp").write_bytes(b"x")
        (tmp_path / "widgets" / "bad.quarantine").write_bytes(b"x")
        entries, total = store.usage()
        assert entries == 2
        assert total > 0
        assert store.clear() == 2  # counts entries, not leftovers
        assert store.usage() == (0, 0)
        assert list((tmp_path / "widgets").iterdir()) == []

    def test_unusable_cache_dir_degrades_softly(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a regular file, not a directory")
        store = _make_store(blocker)
        assert not store.put("k1", np.ones(2))
        assert store.lookup("k1") is None
        assert store.usage() == (0, 0)

    def test_reset_stats_keeps_entries(self, tmp_path):
        store = _make_store(tmp_path)
        store.put("k1", np.ones(2))
        store.lookup("missing")
        store.reset_stats()
        stats = store.stats
        assert (stats.hits, stats.misses, stats.corruptions) == (0, 0, 0)
        assert store.usage()[0] == 1
