"""Unit tests for the power conversions of Eq. (11), (14), (15)."""

import numpy as np
import pytest

from repro.core import (
    envelope_power_to_gaussian_power,
    gaussian_power_to_envelope_power,
)
from repro.core.variance import (
    RAYLEIGH_VARIANCE_FACTOR,
    rayleigh_mean_from_gaussian_power,
    rayleigh_moments,
    rayleigh_variance_from_gaussian_power,
)
from repro.exceptions import PowerError


class TestConversionFactor:
    def test_factor_value(self):
        assert RAYLEIGH_VARIANCE_FACTOR == pytest.approx(0.2146, abs=1e-4)


class TestEnvelopeToGaussian:
    def test_eq11_scalar(self):
        # sigma_g^2 = sigma_r^2 / (1 - pi/4)
        assert envelope_power_to_gaussian_power(1.0) == pytest.approx(1.0 / (1 - np.pi / 4))

    def test_eq11_vector(self):
        powers = np.array([0.5, 1.0, 2.0])
        out = envelope_power_to_gaussian_power(powers)
        assert np.allclose(out, powers / (1 - np.pi / 4))

    def test_round_trip(self):
        powers = np.array([0.1, 1.0, 10.0])
        assert np.allclose(
            gaussian_power_to_envelope_power(envelope_power_to_gaussian_power(powers)),
            powers,
        )

    @pytest.mark.parametrize("bad", [0.0, -1.0, np.nan, np.inf])
    def test_invalid_values(self, bad):
        with pytest.raises(PowerError):
            envelope_power_to_gaussian_power(bad)

    def test_empty_rejected(self):
        with pytest.raises(PowerError):
            envelope_power_to_gaussian_power(np.array([]))


class TestRayleighMoments:
    def test_eq14_mean_coefficient(self):
        # E{r} = 0.8862 sigma_g for sigma_g^2 = 1.
        assert rayleigh_mean_from_gaussian_power(1.0) == pytest.approx(0.8862, abs=1e-4)

    def test_eq15_variance_coefficient(self):
        assert rayleigh_variance_from_gaussian_power(1.0) == pytest.approx(0.2146, abs=1e-4)

    def test_mean_scales_with_sqrt_power(self):
        assert rayleigh_mean_from_gaussian_power(4.0) == pytest.approx(
            2.0 * rayleigh_mean_from_gaussian_power(1.0)
        )

    def test_moments_tuple(self):
        mean, variance, power = rayleigh_moments(2.0)
        assert power == pytest.approx(2.0)
        assert mean == pytest.approx(np.sqrt(2.0) * np.sqrt(np.pi) / 2)
        assert variance == pytest.approx(2.0 * (1 - np.pi / 4))

    def test_mean_squared_plus_variance_equals_power(self):
        mean, variance, power = rayleigh_moments(3.7)
        assert mean**2 + variance == pytest.approx(power)

    def test_consistency_with_paper_composite_relation(self):
        # From (11), (14): E{r} = sigma_r sqrt(pi / (4 - pi)).
        sigma_r2 = 0.8
        sigma_g2 = float(envelope_power_to_gaussian_power(sigma_r2))
        mean = float(rayleigh_mean_from_gaussian_power(sigma_g2))
        assert mean == pytest.approx(np.sqrt(sigma_r2) * np.sqrt(np.pi / (4 - np.pi)))

    def test_monte_carlo_agreement(self, rng):
        sigma_g2 = 1.7
        samples = np.abs(
            np.sqrt(sigma_g2 / 2)
            * (rng.normal(size=200_000) + 1j * rng.normal(size=200_000))
        )
        assert np.mean(samples) == pytest.approx(
            rayleigh_mean_from_gaussian_power(sigma_g2), rel=0.01
        )
        assert np.var(samples) == pytest.approx(
            rayleigh_variance_from_gaussian_power(sigma_g2), rel=0.02
        )
