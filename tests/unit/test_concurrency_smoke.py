"""Concurrency smoke tests — the dynamic complement to ``lock-discipline``.

Eight threads hammer the two lock-guarded caches the reprolint rule
protects statically (:class:`CompiledPlanCache`'s memory tier and
:class:`DopplerFilterCache`), interleaving lookups, stores, and
invalidations, and assert the stats counters stay consistent: every
probe lands in exactly one of hits/misses, and the resident byte count
never goes negative — the invariants an unguarded read/write would break
first.
"""

import threading

import numpy as np
import pytest

from repro.config import DEFAULTS
from repro.engine import (
    CompiledPlanCache,
    DecompositionCache,
    DopplerFilterCache,
    DopplerSpec,
    SimulationPlan,
    compile_plan,
    compiled_plan_cache_key,
    get_backend,
)

N_THREADS = 8
N_ITERATIONS = 60


def _hammer(worker):
    """Run ``worker(thread_index)`` on N_THREADS threads, re-raising errors."""
    errors = []
    barrier = threading.Barrier(N_THREADS)

    def body(index):
        try:
            barrier.wait(timeout=30)
            worker(index)
        except BaseException as exc:  # noqa: BLE001 - surfaced to the test
            errors.append(exc)

    threads = [
        threading.Thread(target=body, args=(index,)) for index in range(N_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not any(thread.is_alive() for thread in threads), "worker deadlocked"
    if errors:
        raise errors[0]


class TestCompiledPlanCacheMemoryTier:
    @pytest.fixture()
    def compiled_plan(self):
        base = np.array([[1.0, 0.4 + 0.1j], [0.4 - 0.1j, 2.0]], dtype=complex)
        plan = SimulationPlan()
        plan.add(base, seed=11)
        plan.add(2.0 * base, seed=12)
        compiled = compile_plan(
            plan,
            cache=DecompositionCache(),
            filter_cache=DopplerFilterCache(),
            plan_cache=CompiledPlanCache(),
        )
        return plan, compiled

    def test_interleaved_get_store_invalidate_keeps_stats_consistent(
        self, compiled_plan
    ):
        plan, compiled = compiled_plan
        cache = CompiledPlanCache(memory_max_bytes=1 << 20)
        backend = get_backend("numpy")
        key = compiled_plan_cache_key(
            plan, defaults=DEFAULTS, cache_token=backend.cache_token
        )
        lookup_counts = [0] * N_THREADS
        byte_samples = []

        def worker(index):
            for iteration in range(N_ITERATIONS):
                step = (index + iteration) % 4
                if step == 0:
                    cache.put(compiled, defaults=DEFAULTS)
                elif step == 3 and index % 2:
                    cache.invalidate(key)
                else:
                    served = cache.lookup(
                        plan, defaults=DEFAULTS, backend=backend
                    )
                    lookup_counts[index] += 1
                    if served is not None:
                        assert served.n_entries == compiled.n_entries
                entries, resident = cache.memory_usage()
                assert entries >= 0
                assert resident >= 0, "memory byte counter went negative"
                byte_samples.append(resident)

        _hammer(worker)

        stats = cache.stats
        assert stats.memory_bytes >= 0
        assert stats.memory_entries >= 0
        # Every lookup probed the memory tier exactly once (the cache is
        # disk-detached, so there are no disk-tier probes to double-count).
        assert stats.memory_hits + stats.memory_misses == sum(lookup_counts)
        assert stats.lookups == stats.memory_hits + stats.hits + stats.misses
        assert stats.hits == stats.misses == 0
        assert max(byte_samples) <= 1 << 20

    def test_final_state_still_serves_bit_identical_plans(self, compiled_plan):
        plan, compiled = compiled_plan
        cache = CompiledPlanCache(memory_max_bytes=1 << 20)
        backend = get_backend("numpy")

        def worker(index):
            for _ in range(N_ITERATIONS):
                cache.put(compiled, defaults=DEFAULTS)
                cache.lookup(plan, defaults=DEFAULTS, backend=backend)

        _hammer(worker)
        served = cache.lookup(plan, defaults=DEFAULTS, backend=backend)
        assert served is not None
        for group, fresh_group in zip(served.groups, compiled.groups):
            np.testing.assert_array_equal(
                group.coloring_stack, fresh_group.coloring_stack
            )


class TestDopplerFilterCache:
    KEYS = ((64, 0.05), (64, 0.1), (128, 0.05))

    def test_interleaved_get_and_clear_keeps_stats_consistent(self):
        cache = DopplerFilterCache()
        get_counts = [0] * N_THREADS

        def worker(index):
            for iteration in range(N_ITERATIONS):
                n_points, doppler = self.KEYS[(index + iteration) % len(self.KEYS)]
                coefficients, variance, _was_cached = cache.get(n_points, doppler)
                get_counts[index] += 1
                assert coefficients.shape == (n_points,)
                assert variance > 0
                assert not coefficients.flags.writeable
                if index == 0 and iteration % 20 == 19:
                    cache.clear()

        _hammer(worker)

        stats = cache.stats
        # Every get() recorded exactly one hit or miss, even racing clear().
        assert stats.hits + stats.misses == sum(get_counts)
        assert stats.lookups == stats.hits + stats.misses
        # At least one build per distinct key; clears may force rebuilds.
        assert stats.misses >= len(self.KEYS)

    def test_concurrent_gets_share_one_frozen_array_per_key(self):
        cache = DopplerFilterCache()
        seen = [None] * N_THREADS

        def worker(index):
            coefficients, _variance, _was_cached = cache.get(64, 0.05)
            seen[index] = coefficients

        _hammer(worker)
        assert len(cache) == 1
        first = seen[0]
        for coefficients in seen[1:]:
            np.testing.assert_array_equal(coefficients, first)
