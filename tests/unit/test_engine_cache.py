"""Unit tests for the decomposition cache: keys, LRU behaviour, counters."""

import numpy as np
import pytest

from repro.config import with_overrides
from repro.core.coloring import compute_coloring
from repro.engine import DecompositionCache, decomposition_cache_key


@pytest.fixture()
def matrix():
    return np.array([[1.0, 0.4 + 0.1j], [0.4 - 0.1j, 2.0]], dtype=complex)


class TestCacheKey:
    def test_deterministic(self, matrix):
        assert decomposition_cache_key(matrix) == decomposition_cache_key(matrix.copy())

    def test_sensitive_to_matrix_content(self, matrix):
        other = matrix.copy()
        other[0, 1] += 1e-15
        assert decomposition_cache_key(matrix) != decomposition_cache_key(other)

    def test_sensitive_to_methods(self, matrix):
        base = decomposition_cache_key(matrix)
        assert decomposition_cache_key(matrix, method="cholesky") != base
        assert decomposition_cache_key(matrix, psd_method="epsilon") != base
        assert decomposition_cache_key(matrix, epsilon=1e-3) != base

    def test_sensitive_to_tolerances(self, matrix):
        overridden = with_overrides(eig_clip_tol=1e-9)
        assert decomposition_cache_key(matrix) != decomposition_cache_key(
            matrix, defaults=overridden
        )

    def test_sensitive_to_shape(self):
        flat = np.eye(4, dtype=complex)
        assert decomposition_cache_key(flat) != decomposition_cache_key(np.eye(2, dtype=complex))


class TestCacheBehaviour:
    def test_miss_then_hit(self, matrix):
        cache = DecompositionCache()
        first = cache.coloring_for(matrix)
        second = cache.coloring_for(matrix)
        assert second is first
        stats = cache.stats
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.lookups == 2
        assert stats.hit_rate == 0.5

    def test_cached_equals_fresh_computation(self, matrix):
        cache = DecompositionCache()
        cached = cache.coloring_for(matrix)
        fresh = compute_coloring(matrix)
        assert np.array_equal(cached.coloring_matrix, fresh.coloring_matrix)
        assert np.array_equal(cached.effective_covariance, fresh.effective_covariance)

    def test_different_methods_cached_separately(self, matrix):
        cache = DecompositionCache()
        eigen = cache.coloring_for(matrix, method="eigen")
        cholesky = cache.coloring_for(matrix, method="cholesky")
        assert eigen.method == "eigen"
        assert cholesky.method == "cholesky"
        assert cache.stats.misses == 2
        assert len(cache) == 2

    def test_lru_eviction(self):
        cache = DecompositionCache(maxsize=2)
        matrices = [np.eye(2, dtype=complex) * (index + 1) for index in range(3)]
        for m in matrices:
            cache.coloring_for(m)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # The first (least recently used) matrix was evicted: re-requesting
        # it misses again.
        cache.coloring_for(matrices[0])
        assert cache.stats.misses == 4

    def test_lru_refresh_on_hit(self):
        cache = DecompositionCache(maxsize=2)
        a = np.eye(2, dtype=complex)
        b = 2.0 * np.eye(2, dtype=complex)
        c = 3.0 * np.eye(2, dtype=complex)
        cache.coloring_for(a)
        cache.coloring_for(b)
        cache.coloring_for(a)  # refresh a; b becomes LRU
        cache.coloring_for(c)  # evicts b
        cache.coloring_for(a)
        assert cache.stats.hits == 2

    def test_maxsize_zero_disables_storage(self, matrix):
        cache = DecompositionCache(maxsize=0)
        cache.coloring_for(matrix)
        cache.coloring_for(matrix)
        stats = cache.stats
        assert (stats.hits, stats.misses) == (0, 2)
        assert len(cache) == 0

    def test_negative_maxsize_rejected(self):
        with pytest.raises(ValueError):
            DecompositionCache(maxsize=-1)

    def test_clear_keeps_counters(self, matrix):
        cache = DecompositionCache()
        cache.coloring_for(matrix)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.misses == 1

    def test_reset_stats_keeps_entries(self, matrix):
        cache = DecompositionCache()
        cache.coloring_for(matrix)
        cache.reset_stats()
        assert cache.stats.lookups == 0
        assert len(cache) == 1
        cache.coloring_for(matrix)
        assert cache.stats.hits == 1

    def test_contains_by_key(self, matrix):
        cache = DecompositionCache()
        key = decomposition_cache_key(matrix)
        assert key not in cache
        cache.coloring_for(matrix)
        assert key in cache
