"""Unit tests for the decomposition cache: keys, LRU behaviour, counters, disk tier."""

import numpy as np
import pytest

from repro.config import with_overrides
from repro.core.coloring import compute_coloring
from repro.engine import DecompositionCache, decomposition_cache_key


@pytest.fixture()
def matrix():
    return np.array([[1.0, 0.4 + 0.1j], [0.4 - 0.1j, 2.0]], dtype=complex)


class TestCacheKey:
    def test_deterministic(self, matrix):
        assert decomposition_cache_key(matrix) == decomposition_cache_key(matrix.copy())

    def test_sensitive_to_matrix_content(self, matrix):
        other = matrix.copy()
        other[0, 1] += 1e-15
        assert decomposition_cache_key(matrix) != decomposition_cache_key(other)

    def test_sensitive_to_methods(self, matrix):
        base = decomposition_cache_key(matrix)
        assert decomposition_cache_key(matrix, method="cholesky") != base
        assert decomposition_cache_key(matrix, psd_method="epsilon") != base
        assert decomposition_cache_key(matrix, epsilon=1e-3) != base

    def test_sensitive_to_tolerances(self, matrix):
        overridden = with_overrides(eig_clip_tol=1e-9)
        assert decomposition_cache_key(matrix) != decomposition_cache_key(
            matrix, defaults=overridden
        )

    def test_sensitive_to_shape(self):
        flat = np.eye(4, dtype=complex)
        assert decomposition_cache_key(flat) != decomposition_cache_key(np.eye(2, dtype=complex))


class TestCacheBehaviour:
    def test_miss_then_hit(self, matrix):
        cache = DecompositionCache()
        first = cache.coloring_for(matrix)
        second = cache.coloring_for(matrix)
        assert second is first
        stats = cache.stats
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.lookups == 2
        assert stats.hit_rate == 0.5

    def test_cached_equals_fresh_computation(self, matrix):
        cache = DecompositionCache()
        cached = cache.coloring_for(matrix)
        fresh = compute_coloring(matrix)
        assert np.array_equal(cached.coloring_matrix, fresh.coloring_matrix)
        assert np.array_equal(cached.effective_covariance, fresh.effective_covariance)

    def test_different_methods_cached_separately(self, matrix):
        cache = DecompositionCache()
        eigen = cache.coloring_for(matrix, method="eigen")
        cholesky = cache.coloring_for(matrix, method="cholesky")
        assert eigen.method == "eigen"
        assert cholesky.method == "cholesky"
        assert cache.stats.misses == 2
        assert len(cache) == 2

    def test_lru_eviction(self):
        cache = DecompositionCache(maxsize=2)
        matrices = [np.eye(2, dtype=complex) * (index + 1) for index in range(3)]
        for m in matrices:
            cache.coloring_for(m)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # The first (least recently used) matrix was evicted: re-requesting
        # it misses again.
        cache.coloring_for(matrices[0])
        assert cache.stats.misses == 4

    def test_lru_refresh_on_hit(self):
        cache = DecompositionCache(maxsize=2)
        a = np.eye(2, dtype=complex)
        b = 2.0 * np.eye(2, dtype=complex)
        c = 3.0 * np.eye(2, dtype=complex)
        cache.coloring_for(a)
        cache.coloring_for(b)
        cache.coloring_for(a)  # refresh a; b becomes LRU
        cache.coloring_for(c)  # evicts b
        cache.coloring_for(a)
        assert cache.stats.hits == 2

    def test_maxsize_zero_disables_storage(self, matrix):
        cache = DecompositionCache(maxsize=0)
        cache.coloring_for(matrix)
        cache.coloring_for(matrix)
        stats = cache.stats
        assert (stats.hits, stats.misses) == (0, 2)
        assert len(cache) == 0

    def test_negative_maxsize_rejected(self):
        with pytest.raises(ValueError):
            DecompositionCache(maxsize=-1)

    def test_clear_keeps_counters(self, matrix):
        cache = DecompositionCache()
        cache.coloring_for(matrix)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.misses == 1

    def test_reset_stats_keeps_entries(self, matrix):
        cache = DecompositionCache()
        cache.coloring_for(matrix)
        cache.reset_stats()
        assert cache.stats.lookups == 0
        assert len(cache) == 1
        cache.coloring_for(matrix)
        assert cache.stats.hits == 1

    def test_contains_by_key(self, matrix):
        cache = DecompositionCache()
        key = decomposition_cache_key(matrix)
        assert key not in cache
        cache.coloring_for(matrix)
        assert key in cache


class TestStoreFreezesArrays:
    """Cached arrays must be read-only in *every* configuration.

    Regression test: ``store`` used to return early for ``maxsize == 0``
    *before* freezing, so cache-disabled runs handed out writeable arrays
    while cached runs handed out frozen ones — an in-place mutation
    corrupted results only in one configuration.
    """

    @pytest.mark.parametrize("maxsize", [0, 256])
    def test_writeable_flag_matches_across_configurations(self, matrix, maxsize):
        cache = DecompositionCache(maxsize=maxsize)
        decomposition = cache.coloring_for(matrix)
        assert not decomposition.coloring_matrix.flags.writeable
        assert not decomposition.effective_covariance.flags.writeable

    def test_mutation_fails_loudly_with_disabled_cache(self, matrix):
        decomposition = DecompositionCache(maxsize=0).coloring_for(matrix)
        with pytest.raises(ValueError):
            decomposition.coloring_matrix[0, 0] = 999.0

    def test_disk_promoted_entries_are_frozen(self, matrix, tmp_path):
        DecompositionCache(cache_dir=tmp_path).coloring_for(matrix)
        restored = DecompositionCache(cache_dir=tmp_path).coloring_for(matrix)
        assert not restored.coloring_matrix.flags.writeable
        assert not restored.effective_covariance.flags.writeable


class TestDiskTier:
    def _disk_files(self, tmp_path):
        return sorted((tmp_path / "decompositions").glob("*.npz"))

    def test_store_spills_to_disk(self, matrix, tmp_path):
        cache = DecompositionCache(cache_dir=tmp_path)
        cache.coloring_for(matrix)
        assert len(self._disk_files(tmp_path)) == 1
        stats = cache.stats
        assert stats.disk_entries == 1
        assert stats.disk_bytes > 0

    def test_fresh_process_equivalent_hits_disk(self, matrix, tmp_path):
        DecompositionCache(cache_dir=tmp_path).coloring_for(matrix)
        # A second cache over the same directory models a new process.
        second = DecompositionCache(cache_dir=tmp_path)
        restored = second.coloring_for(matrix)
        stats = second.stats
        assert (stats.hits, stats.misses, stats.disk_hits) == (1, 0, 1)
        fresh = compute_coloring(matrix)
        assert restored.coloring_matrix.tobytes() == fresh.coloring_matrix.tobytes()
        assert (
            restored.effective_covariance.tobytes()
            == fresh.effective_covariance.tobytes()
        )
        assert (
            restored.requested_covariance.tobytes()
            == fresh.requested_covariance.tobytes()
        )
        assert restored.method == fresh.method
        assert restored.was_repaired == fresh.was_repaired
        assert restored.min_eigenvalue == fresh.min_eigenvalue
        assert restored.extra == fresh.extra

    def test_disk_hit_promotes_to_memory(self, matrix, tmp_path):
        DecompositionCache(cache_dir=tmp_path).coloring_for(matrix)
        second = DecompositionCache(cache_dir=tmp_path)
        first_hit = second.coloring_for(matrix)
        second_hit = second.coloring_for(matrix)
        assert second_hit is first_hit  # served from memory, not re-read
        stats = second.stats
        assert stats.hits == 2
        assert stats.disk_hits == 1
        assert stats.memory_hits == 1

    def test_memory_only_cache_counts_no_disk_misses(self, matrix):
        cache = DecompositionCache()
        cache.coloring_for(matrix)
        stats = cache.stats
        assert stats.disk_misses == 0
        assert stats.disk_entries == 0

    def test_disk_only_cache(self, matrix, tmp_path):
        # maxsize=0 with a cache_dir is a pure disk cache: nothing retained
        # in memory, but lookups are still served from disk.
        cache = DecompositionCache(maxsize=0, cache_dir=tmp_path)
        cache.coloring_for(matrix)
        cache.coloring_for(matrix)
        stats = cache.stats
        assert len(cache) == 0
        assert stats.hits == 1
        assert stats.disk_hits == 1

    def test_clear_keeps_disk(self, matrix, tmp_path):
        cache = DecompositionCache(cache_dir=tmp_path)
        cache.coloring_for(matrix)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.disk_entries == 1

    def test_clear_disk_removes_files(self, matrix, tmp_path):
        cache = DecompositionCache(cache_dir=tmp_path)
        cache.coloring_for(matrix)
        assert cache.clear_disk() == 1
        assert self._disk_files(tmp_path) == []
        assert cache.stats.disk_entries == 0

    def test_lru_byte_bound_evicts_oldest(self, tmp_path):
        import os
        import time

        cache = DecompositionCache(cache_dir=tmp_path, disk_max_bytes=1)
        matrices = [np.eye(2, dtype=complex) * (index + 1) for index in range(3)]
        for index, m in enumerate(matrices):
            cache.coloring_for(m)
            # Separate mtimes deterministically (filesystem clocks are coarse).
            for path in self._disk_files(tmp_path):
                os.utime(path, (time.time() - 100 + index, time.time() - 100 + index))
        # A 1-byte bound can hold no file: every store evicts down to the
        # newest entry's write, then that file itself gets removed next time.
        assert cache.stats.disk_evictions >= 2
        assert len(self._disk_files(tmp_path)) <= 1

    def test_unusable_cache_dir_degrades_to_memory_only(self, matrix, tmp_path):
        # cache_dir pointing at a regular file: every disk op must fail
        # soft, leaving a working memory-only cache.
        blocker = tmp_path / "blocker"
        blocker.write_text("a regular file, not a directory")
        cache = DecompositionCache(cache_dir=blocker)
        first = cache.coloring_for(matrix)
        second = cache.coloring_for(matrix)
        assert second is first
        assert cache.stats.disk_entries == 0

    def test_failed_spill_is_not_retried_per_hit(self, matrix, tmp_path, monkeypatch):
        from repro.engine.store import ArtifactStore

        blocker = tmp_path / "blocker"
        blocker.write_text("x")
        cache = DecompositionCache(cache_dir=blocker)
        cache.coloring_for(matrix)  # store: spill attempt fails
        calls = []
        original = ArtifactStore._write
        monkeypatch.setattr(
            ArtifactStore,
            "_write",
            lambda self, *a: calls.append(1) or original(self, *a),
        )
        for _ in range(5):
            cache.coloring_for(matrix)  # memory hits
        assert calls == []  # the failed spill was remembered, not re-paid

    def test_reattaching_tier_retries_spills(self, matrix, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("x")
        cache = DecompositionCache(cache_dir=blocker)
        cache.coloring_for(matrix)
        cache.set_cache_dir(tmp_path / "good")  # new, writable directory
        cache.coloring_for(matrix)  # memory hit -> fresh spill attempt
        assert len(list((tmp_path / "good" / "decompositions").glob("*.npz"))) == 1

    def test_clear_disk_sweeps_orphaned_tmp_files(self, matrix, tmp_path):
        cache = DecompositionCache(cache_dir=tmp_path)
        cache.coloring_for(matrix)
        orphan = tmp_path / "decompositions" / "deadbeef.tmp"
        orphan.write_bytes(b"half-written by a dead worker")
        assert cache.clear_disk() == 1  # counts entries, not tmp leftovers
        assert not orphan.exists()

    def test_eviction_sweeps_stale_tmp_files(self, matrix, tmp_path):
        import os
        import time

        cache = DecompositionCache(cache_dir=tmp_path, disk_max_bytes=1)
        orphan = tmp_path / "decompositions"
        orphan.mkdir(parents=True)
        stale = orphan / "deadbeef.tmp"
        stale.write_bytes(b"old")
        os.utime(stale, (time.time() - 7200, time.time() - 7200))
        fresh = orphan / "cafe.tmp"
        fresh.write_bytes(b"in flight")
        cache.coloring_for(matrix)  # triggers an eviction pass (1-byte bound)
        assert not stale.exists()  # hour-old orphan swept
        assert fresh.exists()  # recent file presumed in-flight, kept

    def test_set_cache_dir_attaches_existing_entries(self, matrix, tmp_path):
        DecompositionCache(cache_dir=tmp_path).coloring_for(matrix)
        cache = DecompositionCache()
        cache.set_cache_dir(tmp_path)
        assert cache.cache_dir == tmp_path
        cache.coloring_for(matrix)
        assert cache.stats.disk_hits == 1

    def test_negative_disk_bound_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            DecompositionCache(cache_dir=tmp_path, disk_max_bytes=-1)


class TestDiskCorruption:
    """A corrupt or truncated disk entry is a miss, never an error."""

    def _entry_path(self, tmp_path):
        (path,) = (tmp_path / "decompositions").glob("*.npz")
        return path

    @pytest.fixture()
    def populated(self, matrix, tmp_path):
        DecompositionCache(cache_dir=tmp_path).coloring_for(matrix)
        return tmp_path

    def test_truncated_file_is_a_counted_miss(self, matrix, populated):
        path = self._entry_path(populated)
        path.write_bytes(path.read_bytes()[:50])
        cache = DecompositionCache(cache_dir=populated)
        decomposition = cache.coloring_for(matrix)
        stats = cache.stats
        assert stats.disk_corruptions == 1
        assert stats.disk_misses == 1
        assert stats.misses == 1
        fresh = compute_coloring(matrix)
        assert decomposition.coloring_matrix.tobytes() == fresh.coloring_matrix.tobytes()

    def test_garbage_file_is_a_counted_miss(self, matrix, populated):
        self._entry_path(populated).write_bytes(b"this is not an npz archive")
        cache = DecompositionCache(cache_dir=populated)
        cache.coloring_for(matrix)
        assert cache.stats.disk_corruptions == 1

    def test_corrupt_file_is_removed_then_rewritten(self, matrix, populated):
        path = self._entry_path(populated)
        path.write_bytes(b"garbage")
        cache = DecompositionCache(cache_dir=populated)
        cache.coloring_for(matrix)  # miss: quarantines the file, recomputes, re-spills
        rewritten = self._entry_path(populated)
        assert rewritten == path
        # The rewritten entry is valid again for the next "process".
        second = DecompositionCache(cache_dir=populated)
        second.coloring_for(matrix)
        assert second.stats.disk_hits == 1

    def test_tampered_payload_fails_digest_verification(self, matrix, populated):
        import zipfile

        path = self._entry_path(populated)
        # Rewrite the archive with one payload member bit-flipped but the
        # zip container intact: only the digest check can catch this.
        with zipfile.ZipFile(path) as archive:
            members = {name: archive.read(name) for name in archive.namelist()}
        name = "coloring_matrix.npy"
        payload = bytearray(members[name])
        payload[-1] ^= 0xFF
        members[name] = bytes(payload)
        with zipfile.ZipFile(path, "w") as archive:
            for member_name, data in members.items():
                archive.writestr(member_name, data)
        cache = DecompositionCache(cache_dir=populated)
        decomposition = cache.coloring_for(matrix)
        assert cache.stats.disk_corruptions == 1
        fresh = compute_coloring(matrix)
        assert decomposition.coloring_matrix.tobytes() == fresh.coloring_matrix.tobytes()
