"""Unit tests for the forced-PSD procedure (Section 4.2)."""

import numpy as np
import pytest

from repro.core import compare_forcing_methods, force_positive_semidefinite
from repro.linalg import frobenius_distance, is_positive_semidefinite


class TestForcePositiveSemidefiniteClip:
    def test_psd_input_returned_unchanged(self, eq22_covariance):
        result = force_positive_semidefinite(eq22_covariance, method="clip")
        assert not result.was_modified
        assert np.array_equal(result.matrix, eq22_covariance)
        assert result.frobenius_error == 0.0
        assert result.negative_eigenvalues.size == 0

    def test_indefinite_input_repaired(self, indefinite_covariance):
        result = force_positive_semidefinite(indefinite_covariance, method="clip")
        assert result.was_modified
        assert is_positive_semidefinite(result.matrix)
        assert result.negative_eigenvalues.size == 1
        assert result.frobenius_error > 0

    def test_frobenius_error_equals_clipped_mass(self, indefinite_covariance):
        # Clipping removes exactly the negative eigenvalues, so the Frobenius
        # error equals the root-sum-square of the clipped eigenvalues.
        result = force_positive_semidefinite(indefinite_covariance, method="clip")
        expected = np.sqrt(np.sum(result.negative_eigenvalues**2))
        assert result.frobenius_error == pytest.approx(expected, rel=1e-10)

    def test_records_requested_matrix(self, indefinite_covariance):
        result = force_positive_semidefinite(indefinite_covariance)
        assert np.allclose(result.requested, indefinite_covariance)

    def test_min_eigenvalue_in_extra(self, indefinite_covariance):
        result = force_positive_semidefinite(indefinite_covariance)
        assert result.extra["min_eigenvalue"] == pytest.approx(
            float(np.min(np.linalg.eigvalsh(indefinite_covariance)))
        )

    def test_unknown_method_rejected(self, eq22_covariance):
        with pytest.raises(ValueError):
            force_positive_semidefinite(eq22_covariance, method="magic")


class TestForcePositiveSemidefiniteEpsilon:
    def test_result_is_positive_definite(self, indefinite_covariance):
        result = force_positive_semidefinite(
            indefinite_covariance, method="epsilon", epsilon=1e-4
        )
        assert np.min(np.linalg.eigvalsh(result.matrix)) > 0

    def test_always_counts_as_modified(self, eq23_covariance):
        # The epsilon method perturbs even PSD matrices with zero eigenvalues;
        # for strictly PD inputs the numerical change is zero but the method is
        # flagged as a modification of the request.
        result = force_positive_semidefinite(eq23_covariance, method="epsilon")
        assert result.was_modified

    def test_epsilon_recorded(self, indefinite_covariance):
        result = force_positive_semidefinite(
            indefinite_covariance, method="epsilon", epsilon=3e-5
        )
        assert result.extra["epsilon"] == 3e-5

    def test_clip_is_closer_than_epsilon(self, indefinite_covariance):
        results = compare_forcing_methods(indefinite_covariance, epsilon=1e-2)
        assert results["clip"].frobenius_error <= results["epsilon"].frobenius_error


class TestForcePositiveSemidefiniteHigham:
    def test_preserves_diagonal(self, indefinite_covariance):
        result = force_positive_semidefinite(indefinite_covariance, method="higham")
        assert np.allclose(
            np.diag(result.matrix), np.diag(indefinite_covariance), atol=1e-6
        )

    def test_result_is_psd(self, indefinite_covariance):
        result = force_positive_semidefinite(indefinite_covariance, method="higham")
        assert is_positive_semidefinite(result.matrix, tol=1e-7)

    def test_psd_input_untouched(self, eq22_covariance):
        result = force_positive_semidefinite(eq22_covariance, method="higham")
        assert np.array_equal(result.matrix, eq22_covariance)


class TestCompareForcingMethods:
    def test_returns_all_methods(self, indefinite_covariance):
        results = compare_forcing_methods(indefinite_covariance)
        assert set(results) == {"clip", "epsilon", "higham"}

    def test_all_results_are_psd(self, indefinite_covariance):
        for result in compare_forcing_methods(indefinite_covariance).values():
            assert is_positive_semidefinite(result.matrix, tol=1e-7)

    def test_higham_no_worse_than_epsilon_on_diagonal(self, indefinite_covariance):
        results = compare_forcing_methods(indefinite_covariance, epsilon=1e-1)
        higham_diag_error = frobenius_distance(
            np.diag(np.diag(results["higham"].matrix)),
            np.diag(np.diag(indefinite_covariance)),
        )
        assert higham_diag_error <= 1e-6
