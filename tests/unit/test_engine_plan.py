"""Unit tests for simulation plans: construction, validation, partitioning."""

import numpy as np
import pytest

from repro.channels import MIMOArrayScenario, ScenarioSweep
from repro.core import CovarianceSpec
from repro.engine import DopplerSpec, PlanEntry, SimulationPlan
from repro.exceptions import DopplerError, FilterDesignError, SpecificationError


@pytest.fixture()
def spec():
    return CovarianceSpec.from_covariance_matrix(
        np.array([[1.0, 0.3], [0.3, 1.0]], dtype=complex)
    )


class TestPlanEntry:
    def test_requires_covariance_spec(self):
        with pytest.raises(SpecificationError):
            PlanEntry(spec=np.eye(2))

    def test_rejects_unknown_coloring_method(self, spec):
        with pytest.raises(SpecificationError):
            PlanEntry(spec=spec, coloring_method="qr")

    def test_rejects_unknown_psd_method(self, spec):
        with pytest.raises(SpecificationError):
            PlanEntry(spec=spec, psd_method="magic")

    def test_rejects_bad_sample_variance(self, spec):
        with pytest.raises(SpecificationError):
            PlanEntry(spec=spec, sample_variance=0.0)

    def test_rejects_bad_epsilon(self, spec):
        with pytest.raises(SpecificationError):
            PlanEntry(spec=spec, epsilon=-1.0)

    def test_group_key_contents(self, spec):
        entry = PlanEntry(spec=spec, coloring_method="svd", psd_method="epsilon")
        assert entry.group_key == (2, "svd", "epsilon", 1e-6, None, None)

    def test_with_seed_copies(self, spec):
        entry = PlanEntry(spec=spec, seed=1)
        other = entry.with_seed(2)
        assert other.seed == 2 and entry.seed == 1
        assert other.spec is entry.spec


class TestDopplerSpec:
    def test_defaults_match_the_paper(self):
        doppler = DopplerSpec(normalized_doppler=0.05)
        assert doppler.n_points == 4096
        assert doppler.input_variance_per_dim == 0.5
        assert doppler.compensate_variance is True

    @pytest.mark.parametrize("bad_fm", [0.0, -0.1, 0.5, 0.7])
    def test_rejects_out_of_range_doppler(self, bad_fm):
        with pytest.raises(DopplerError):
            DopplerSpec(normalized_doppler=bad_fm, n_points=64)

    def test_rejects_empty_passband(self):
        # f_m * M < 1: no DFT bin inside the Doppler band.
        with pytest.raises(FilterDesignError):
            DopplerSpec(normalized_doppler=0.001, n_points=64)

    def test_rejects_bad_input_variance(self):
        with pytest.raises(SpecificationError):
            DopplerSpec(normalized_doppler=0.05, n_points=64, input_variance_per_dim=0.0)

    def test_filter_key_excludes_compensation_flag(self):
        on = DopplerSpec(normalized_doppler=0.05, n_points=64)
        off = DopplerSpec(normalized_doppler=0.05, n_points=64, compensate_variance=False)
        assert on.filter_key == off.filter_key == (64, 0.05, 0.5)

    def test_doppler_entry_group_key(self, spec):
        entry = PlanEntry(spec=spec, doppler=DopplerSpec(0.05, n_points=64))
        assert entry.group_key == (2, "eigen", "clip", 1e-6, (64, 0.05, 0.5), None)

    def test_doppler_entry_rejects_custom_sample_variance(self, spec):
        with pytest.raises(SpecificationError, match="sample variance"):
            PlanEntry(spec=spec, doppler=DopplerSpec(0.05, n_points=64), sample_variance=2.0)

    def test_doppler_entry_rejects_wrong_type(self, spec):
        with pytest.raises(SpecificationError):
            PlanEntry(spec=spec, doppler=0.05)  # only DopplerSpec on the entry itself

    def test_plan_add_coerces_bare_frequency(self, spec):
        plan = SimulationPlan()
        plan.add(spec, doppler=0.05)
        assert plan[0].doppler == DopplerSpec(normalized_doppler=0.05)

    def test_plan_add_rejects_bad_doppler_value(self, spec):
        plan = SimulationPlan()
        with pytest.raises(SpecificationError, match="doppler"):
            plan.add(spec, doppler="fast")

    def test_from_specs_applies_doppler_to_every_entry(self, spec):
        doppler = DopplerSpec(normalized_doppler=0.1, n_points=128)
        plan = SimulationPlan.from_specs([spec, spec], seed=3, doppler=doppler)
        assert all(entry.doppler == doppler for entry in plan)

    def test_doppler_and_snapshot_entries_group_separately(self, spec):
        plan = SimulationPlan()
        plan.add(spec)
        plan.add(spec, doppler=DopplerSpec(0.05, n_points=64))
        plan.add(spec, doppler=DopplerSpec(0.05, n_points=64))
        sizes = plan.group_sizes()
        assert sizes[(2, "eigen", "clip", 1e-6, None, None)] == 1
        assert sizes[(2, "eigen", "clip", 1e-6, (64, 0.05, 0.5), None)] == 2


class TestSimulationPlan:
    def test_add_accepts_raw_matrix(self):
        plan = SimulationPlan()
        index = plan.add(np.eye(3, dtype=complex), seed=5)
        assert index == 0
        assert plan[0].spec.n_branches == 3
        assert plan[0].seed == 5

    def test_add_scenario(self):
        plan = SimulationPlan()
        scenario = MIMOArrayScenario(n_antennas=3, spacing_wavelengths=0.5)
        plan.add_scenario(scenario, np.ones(3), label="mimo")
        assert plan.n_entries == 1
        assert plan[0].label == "mimo"
        assert plan[0].spec.metadata["scenario"] == "mimo-spatial"

    def test_add_scenario_requires_interface(self):
        with pytest.raises(SpecificationError):
            SimulationPlan().add_scenario(object(), np.ones(2))

    def test_from_specs_derives_independent_integer_seeds(self):
        matrices = [np.eye(2, dtype=complex)] * 4
        plan = SimulationPlan.from_specs(matrices, seed=42)
        seeds = [entry.seed for entry in plan]
        assert all(isinstance(seed, int) for seed in seeds)
        assert len(set(seeds)) == 4
        # Deterministic: rebuilding from the same root seed gives the same seeds.
        again = SimulationPlan.from_specs(matrices, seed=42)
        assert seeds == [entry.seed for entry in again]

    def test_from_specs_explicit_seeds_must_match_length(self):
        with pytest.raises(SpecificationError):
            SimulationPlan.from_specs([np.eye(2, dtype=complex)], seeds=[1, 2])

    def test_from_specs_labels_must_match_length(self):
        with pytest.raises(SpecificationError):
            SimulationPlan.from_specs([np.eye(2, dtype=complex)], labels=["a", "b"])

    def test_group_sizes(self, spec):
        plan = SimulationPlan()
        plan.add(spec)
        plan.add(spec, coloring_method="svd")
        plan.add(np.eye(3, dtype=complex))
        sizes = plan.group_sizes()
        assert sizes[(2, "eigen", "clip", 1e-6, None, None)] == 1
        assert sizes[(2, "svd", "clip", 1e-6, None, None)] == 1
        assert sizes[(3, "eigen", "clip", 1e-6, None, None)] == 1

    def test_iteration_and_len(self, spec):
        plan = SimulationPlan()
        plan.add(spec)
        plan.add(spec)
        assert len(plan) == 2
        assert [entry.spec for entry in plan] == [spec, spec]

    def test_rejects_non_entry_in_constructor(self):
        with pytest.raises(SpecificationError):
            SimulationPlan(entries=[object()])


class TestPartition:
    def test_contiguous_balanced_split(self):
        matrices = [np.eye(2, dtype=complex) * (index + 1) for index in range(5)]
        plan = SimulationPlan.from_specs(matrices, seed=0)
        parts = plan.partition(2)
        assert [len(part) for part in parts] == [3, 2]
        reassembled = [entry for part in parts for entry in part]
        assert [e.seed for e in reassembled] == [e.seed for e in plan]

    def test_drops_empty_parts(self):
        plan = SimulationPlan.from_specs([np.eye(2, dtype=complex)], seed=0)
        parts = plan.partition(4)
        assert len(parts) == 1


class TestScenarioSweep:
    def test_product_expands_grid(self):
        sweep = ScenarioSweep.product(
            MIMOArrayScenario,
            n_antennas=[2],
            spacing_wavelengths=[0.5, 1.0],
            angular_spread_rad=[0.1, 0.2, 0.3],
        )
        assert len(sweep) == 6
        assert "spacing_wavelengths=0.5" in sweep.labels[0]

    def test_product_rejects_empty_axis(self):
        with pytest.raises(SpecificationError):
            ScenarioSweep.product(MIMOArrayScenario, n_antennas=[])

    def test_product_requires_axes(self):
        with pytest.raises(SpecificationError):
            ScenarioSweep.product(MIMOArrayScenario)

    def test_to_plan_carries_labels_and_seeds(self):
        sweep = ScenarioSweep.product(
            MIMOArrayScenario, n_antennas=[2], spacing_wavelengths=[0.5, 1.5]
        )
        plan = sweep.to_plan(np.ones(2), seed=3)
        assert plan.n_entries == 2
        assert plan[0].label == sweep.labels[0]
        assert plan[0].seed != plan[1].seed

    def test_per_scenario_power_vectors(self):
        sweep = ScenarioSweep.product(
            MIMOArrayScenario, n_antennas=[2], spacing_wavelengths=[0.5, 1.5]
        )
        specs = sweep.specs([np.array([1.0, 2.0]), np.array([3.0, 4.0])])
        assert np.allclose(specs[0].gaussian_variances, [1.0, 2.0])
        assert np.allclose(specs[1].gaussian_variances, [3.0, 4.0])

    def test_power_vector_count_mismatch_rejected(self):
        sweep = ScenarioSweep.product(
            MIMOArrayScenario, n_antennas=[2], spacing_wavelengths=[0.5, 1.5]
        )
        with pytest.raises(SpecificationError):
            sweep.specs([np.array([1.0, 2.0])] * 3)

    def test_rejects_scenarios_without_interface(self):
        with pytest.raises(SpecificationError):
            ScenarioSweep([object()])
