"""Edge-case tests for ``Simulator.envelopes`` Doppler mode.

The Doppler path of the session API now runs as a one-entry Doppler plan of
the batched engine.  These tests pin down its edges: sample counts not
divisible by the IDFT block length, the single-branch ``N = 1`` case,
inferred vs. explicit normalized Doppler, the ``mode`` selector, and the
error paths (invalid ``f_m``, zero samples, conflicting or missing mode
arguments).
"""

import numpy as np
import pytest

from repro.api import Simulator
from repro.channels import DopplerSettings, OFDMScenario
from repro.core import CovarianceSpec
from repro.core.realtime import RealTimeRayleighGenerator
from repro.engine import DecompositionCache
from repro.exceptions import DopplerError, SpecificationError


@pytest.fixture()
def simulator():
    return Simulator(backend="numpy", cache=DecompositionCache())


@pytest.fixture()
def spec():
    return CovarianceSpec.from_covariance_matrix(
        np.array([[1.0, 0.5], [0.5, 1.0]], dtype=complex)
    )


@pytest.fixture()
def scenario():
    """An OFDM scenario carrying its own Doppler settings (f_m = 100/2000)."""
    return OFDMScenario(
        carrier_frequencies_hz=np.array([2.0e9, 2.001e9]),
        delays_s=np.array([0.0, 1e-6]),
        rms_delay_spread_s=1e-6,
        doppler=DopplerSettings(sampling_frequency_hz=2000.0, max_doppler_hz=100.0),
    )


class TestBlockHandling:
    def test_non_divisible_sample_count_truncates_a_continuous_record(
        self, simulator, spec
    ):
        """n_samples that is not a multiple of M: blocks are concatenated and
        truncated, matching the looped generator's record prefix."""
        block = simulator.envelopes(
            spec, 150, seed=9, normalized_doppler=0.05, n_points=64, return_gaussian=True
        )
        assert block.samples.shape == (2, 150)
        reference = RealTimeRayleighGenerator(
            spec, normalized_doppler=0.05, n_points=64, rng=9
        ).generate_gaussian(3)  # ceil(150 / 64) = 3 blocks
        assert np.array_equal(reference.samples[:, :150], block.samples)

    def test_default_block_size_holds_the_whole_record(self, simulator, spec):
        """Without n_points the block length is the doppler_block_size choice:
        one block covering n_samples (the historical behaviour)."""
        block = simulator.envelopes(
            spec, 100, seed=3, normalized_doppler=0.05, return_gaussian=True
        )
        assert block.samples.shape == (2, 100)
        assert block.metadata["n_points"] == 128  # smallest power of two >= 100
        reference = RealTimeRayleighGenerator(
            spec, normalized_doppler=0.05, n_points=128, rng=3
        ).generate_gaussian(1)
        assert np.array_equal(reference.samples[:, :100], block.samples)

    def test_single_branch_spec(self, simulator):
        """N = 1: one branch, one IDFT stream, scalar coloring."""
        single = CovarianceSpec.from_covariance_matrix(
            np.array([[2.0]], dtype=complex)
        )
        block = simulator.envelopes(
            single, 70, seed=4, normalized_doppler=0.1, n_points=64, return_gaussian=True
        )
        assert block.samples.shape == (1, 70)
        reference = RealTimeRayleighGenerator(
            single, normalized_doppler=0.1, n_points=64, rng=4
        ).generate_gaussian(2)
        assert np.array_equal(reference.samples[:, :70], block.samples)

    def test_compensation_toggle_matches_realtime_generator(self, simulator, spec):
        block = simulator.envelopes(
            spec,
            64,
            seed=5,
            normalized_doppler=0.05,
            n_points=64,
            compensate_variance=False,
            return_gaussian=True,
        )
        assert block.metadata["compensate_variance"] is False
        reference = RealTimeRayleighGenerator(
            spec,
            normalized_doppler=0.05,
            n_points=64,
            compensate_variance=False,
            rng=5,
        ).generate_gaussian(1)
        assert np.array_equal(reference.samples, block.samples)


class TestModeSelection:
    def test_scenario_infers_normalized_doppler(self, simulator, scenario):
        block = simulator.envelopes(
            scenario, 64, seed=7, gaussian_powers=np.ones(2), return_gaussian=True
        )
        assert block.metadata["method"] == "realtime"
        assert block.metadata["normalized_doppler"] == pytest.approx(0.05)

    def test_explicit_doppler_overrides_scenario(self, simulator, scenario):
        block = simulator.envelopes(
            scenario,
            64,
            seed=7,
            gaussian_powers=np.ones(2),
            normalized_doppler=0.2,
            return_gaussian=True,
        )
        assert block.metadata["normalized_doppler"] == 0.2

    def test_mode_doppler_accepts_inferred_doppler(self, simulator, scenario):
        block = simulator.envelopes(
            scenario,
            64,
            seed=7,
            gaussian_powers=np.ones(2),
            mode="doppler",
            return_gaussian=True,
        )
        assert block.metadata["method"] == "realtime"

    def test_mode_snapshot_suppresses_scenario_doppler(self, simulator, scenario):
        block = simulator.envelopes(
            scenario,
            64,
            seed=7,
            gaussian_powers=np.ones(2),
            mode="snapshot",
            return_gaussian=True,
        )
        assert block.metadata["method"] == "snapshot"

    def test_mode_doppler_without_doppler_raises(self, simulator, spec):
        with pytest.raises(SpecificationError, match="mode='doppler'"):
            simulator.envelopes(spec, 64, seed=1, mode="doppler")

    def test_mode_snapshot_conflicts_with_explicit_doppler(self, simulator, spec):
        with pytest.raises(SpecificationError, match="conflicts"):
            simulator.envelopes(
                spec, 64, seed=1, mode="snapshot", normalized_doppler=0.05
            )

    def test_unknown_mode_rejected(self, simulator, spec):
        with pytest.raises(SpecificationError, match="mode"):
            simulator.envelopes(spec, 64, seed=1, mode="realtime")


class TestErrorPaths:
    @pytest.mark.parametrize("bad_fm", [0.0, -0.05, 0.5, 0.9])
    def test_invalid_normalized_doppler_rejected(self, simulator, spec, bad_fm):
        with pytest.raises((SpecificationError, DopplerError)):
            simulator.envelopes(spec, 64, seed=1, normalized_doppler=bad_fm)

    @pytest.mark.parametrize("bad_fm", [0.0, 0.5])
    def test_invalid_doppler_rejected_with_explicit_block_size(
        self, simulator, spec, bad_fm
    ):
        with pytest.raises((SpecificationError, DopplerError)):
            simulator.envelopes(
                spec, 64, seed=1, normalized_doppler=bad_fm, n_points=64
            )

    @pytest.mark.parametrize("bad_count", [0, -3])
    def test_zero_or_negative_samples_rejected(self, simulator, spec, bad_count):
        with pytest.raises(SpecificationError, match="n_samples"):
            simulator.envelopes(spec, bad_count, seed=1, normalized_doppler=0.05)

    def test_tiny_doppler_with_unbounded_block_rejected(self, simulator, spec):
        # doppler_block_size refuses to grow the IDFT block beyond its cap.
        with pytest.raises(SpecificationError, match="exceeding the limit"):
            simulator.envelopes(spec, 16, seed=1, normalized_doppler=1e-9)
