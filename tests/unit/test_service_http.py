"""End-to-end tests of the HTTP front end (:mod:`repro.service.http`).

Each test boots a real :class:`ServiceHTTPServer` on an ephemeral port and
talks to it over raw asyncio connections — no HTTP client library — so the
status lines, headers, and chunked framing on the wire are what is being
asserted, not a client's interpretation of them.
"""

from __future__ import annotations

import asyncio
import json
import threading

import numpy as np
import pytest

from repro.api import Simulator
from repro.engine import SimulationPlan
from repro.engine.backends import NumpyBackend
from repro.engine.cache import DecompositionCache
from repro.service import (
    EnvelopeService,
    ServiceHTTPServer,
    plan_to_payload,
    result_from_lines,
)

from conftest import FlakyBackend

BASE = np.array([[1.0, 0.45 + 0.15j], [0.45 - 0.15j, 1.7]], dtype=complex)


def _plan(seed=7, scale=1.0):
    plan = SimulationPlan()
    plan.add(scale * BASE, seed=seed)
    return plan


class GatedBackend(NumpyBackend):
    """A numpy backend whose ``eigh`` blocks until the test releases it."""

    name = "gated-numpy"
    tolerance = 1e-299  # never cache-aliased with numpy

    def __init__(self) -> None:
        self.entered = threading.Event()
        self.release = threading.Event()

    def eigh(self, stack):
        self.entered.set()
        if not self.release.wait(timeout=10):
            raise RuntimeError("gate never released")  # pragma: no cover
        return super().eigh(stack)


async def _request(port, method, path, body=None):
    """One HTTP/1.1 exchange; returns (status, headers, raw body bytes)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = b"" if body is None else json.dumps(body).encode("utf8")
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: localhost\r\n"
        f"Content-Length: {len(payload)}\r\n\r\n"
    )
    writer.write(head.encode("ascii") + payload)
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    raw = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except Exception:
        pass
    return status, headers, raw


def _dechunk(data: bytes) -> bytes:
    """Decode HTTP/1.1 chunked transfer encoding."""
    out = bytearray()
    index = 0
    while True:
        newline = data.index(b"\r\n", index)
        size = int(data[index:newline], 16)
        if size == 0:
            break
        start = newline + 2
        out.extend(data[start : start + size])
        index = start + size + 2
    return bytes(out)


async def _submit_raw(port, raw_bytes):
    """POST raw (possibly invalid) bytes to /v1/plans."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    head = (
        f"POST /v1/plans HTTP/1.1\r\nHost: localhost\r\n"
        f"Content-Length: {len(raw_bytes)}\r\n\r\n"
    )
    writer.write(head.encode("ascii") + raw_bytes)
    await writer.drain()
    status = int((await reader.readline()).split()[1])
    writer.close()
    try:
        await writer.wait_closed()
    except Exception:
        pass
    return status


def _serve(simulator, **service_kwargs):
    """Async context manager: a started service + server on port 0."""

    class _Ctx:
        async def __aenter__(self):
            self.service = EnvelopeService(simulator, **service_kwargs)
            await self.service.start()
            self.server = ServiceHTTPServer(self.service, "127.0.0.1", 0)
            await self.server.start()
            return self.service, self.server

        async def __aexit__(self, *exc_info):
            await self.server.stop()
            await self.service.stop()

    return _Ctx()


class TestRoutes:
    def test_healthz_and_metrics(self):
        async def scenario():
            sim = Simulator(cache=DecompositionCache())
            async with _serve(sim) as (_service, server):
                status, _headers, raw = await _request(server.port, "GET", "/healthz")
                assert status == 200
                assert json.loads(raw) == {"status": "ok", "running": True}
                status, _headers, raw = await _request(
                    server.port, "GET", "/v1/metrics"
                )
                assert status == 200
                metrics = json.loads(raw)
                assert metrics["requests_submitted"] == 0
                assert metrics["max_queue"] == 64
            sim.close()

        asyncio.run(scenario())

    def test_unknown_route_and_unknown_ids_404(self):
        async def scenario():
            sim = Simulator(cache=DecompositionCache())
            async with _serve(sim) as (_service, server):
                for method, path in (
                    ("GET", "/nope"),
                    ("PUT", "/v1/plans"),
                    ("GET", "/v1/plans/req-000001"),
                    ("DELETE", "/v1/plans/req-000001"),
                    ("GET", "/v1/plans/req-000001/result"),
                ):
                    status, _headers, _raw = await _request(
                        server.port, method, path
                    )
                    assert status == 404, (method, path)
            sim.close()

        asyncio.run(scenario())

    def test_submit_poll_stream_round_trip_is_bit_identical(self):
        async def scenario():
            sim = Simulator(cache=DecompositionCache())
            async with _serve(sim) as (_service, server):
                payload = plan_to_payload(_plan(seed=5), 96, client_id="wire")
                status, _headers, raw = await _request(
                    server.port, "POST", "/v1/plans", body=payload
                )
                assert status == 202
                submitted = json.loads(raw)
                request_id = submitted["request_id"]
                status, _headers, raw = await _request(
                    server.port, "GET", f"/v1/plans/{request_id}"
                )
                assert status == 200
                assert json.loads(raw)["client_id"] == "wire"
                status, headers, raw = await _request(
                    server.port, "GET", f"/v1/plans/{request_id}/result"
                )
                assert status == 200
                assert headers["transfer-encoding"] == "chunked"
                assert headers["content-type"] == "application/x-ndjson"
                lines = _dechunk(raw).decode("utf8").splitlines()
                return result_from_lines(iter(lines))
            sim.close()

        decoded = asyncio.run(scenario())
        reference_sim = Simulator(cache=DecompositionCache())
        try:
            reference = reference_sim.run(_plan(seed=5), 96)
        finally:
            reference_sim.close()
        assert np.array_equal(decoded["blocks"][0], reference.blocks[0].samples)

    def test_bad_submissions_400(self):
        async def scenario():
            sim = Simulator(cache=DecompositionCache())
            async with _serve(sim) as (_service, server):
                assert await _submit_raw(server.port, b"{not json") == 400
                bad_version = plan_to_payload(_plan(), 32)
                bad_version["version"] = 42
                status, _headers, raw = await _request(
                    server.port, "POST", "/v1/plans", body=bad_version
                )
                assert status == 400
                assert "version" in json.loads(raw)["error"]
                # A structurally valid payload with a bad sample count.
                bad_samples = plan_to_payload(_plan(), 32)
                bad_samples["n_samples"] = 0
                status, _headers, _raw = await _request(
                    server.port, "POST", "/v1/plans", body=bad_samples
                )
                assert status == 400
            sim.close()

        asyncio.run(scenario())

    def test_malformed_fading_maps_to_400_not_500(self):
        """A bad fading spec is a client error naming the offending field."""

        async def scenario():
            sim = Simulator(cache=DecompositionCache())
            async with _serve(sim) as (_service, server):
                cases = [
                    ({"model": "nakagami"}, "fading.shape"),
                    ({"model": "rice", "shape": 2.0}, "fading.model"),
                    ({"model": "rician", "k_factor": 2.0}, "k_factor"),
                    (
                        {"model": "rician", "shape": 2.0, "shadowing_sigma_db": -1},
                        "fading.shadowing_sigma_db",
                    ),
                ]
                for fading, needle in cases:
                    payload = plan_to_payload(_plan(), 32)
                    payload["entries"][0]["fading"] = fading
                    status, _headers, raw = await _request(
                        server.port, "POST", "/v1/plans", body=payload
                    )
                    assert status == 400
                    assert needle in json.loads(raw)["error"]
            sim.close()

        asyncio.run(scenario())


class TestBackpressureAndCancellation:
    def test_full_queue_429_with_retry_after(self):
        backend = GatedBackend()

        async def scenario():
            sim = Simulator(backend=backend, cache=DecompositionCache(), max_workers=1)
            async with _serve(sim, max_queue=1, dispatch_slots=1) as (
                _service,
                server,
            ):
                # First plan occupies the only dispatch slot (gated mid-eigh).
                status, _h, _r = await _request(
                    server.port,
                    "POST",
                    "/v1/plans",
                    body=plan_to_payload(_plan(seed=1), 32),
                )
                assert status == 202
                await asyncio.to_thread(backend.entered.wait, 10)
                # Second plan fills the one queue slot.
                status, _h, _r = await _request(
                    server.port,
                    "POST",
                    "/v1/plans",
                    body=plan_to_payload(_plan(seed=2), 32),
                )
                assert status == 202
                # Third is rejected with the backpressure contract on the wire.
                status, headers, raw = await _request(
                    server.port,
                    "POST",
                    "/v1/plans",
                    body=plan_to_payload(_plan(seed=3), 32),
                )
                assert status == 429
                assert int(headers["retry-after"]) >= 1
                body = json.loads(raw)
                assert body["retry_after"] > 0
                backend.release.set()
            sim.close()

        asyncio.run(scenario())

    def test_delete_cancels_queued_request_409_result(self):
        backend = GatedBackend()

        async def scenario():
            sim = Simulator(backend=backend, cache=DecompositionCache(), max_workers=1)
            async with _serve(sim, max_queue=4, dispatch_slots=1) as (
                _service,
                server,
            ):
                status, _h, raw = await _request(
                    server.port,
                    "POST",
                    "/v1/plans",
                    body=plan_to_payload(_plan(seed=1), 32),
                )
                assert status == 202
                await asyncio.to_thread(backend.entered.wait, 10)
                # Queued behind the gated flight: cancellable before dispatch.
                status, _h, raw = await _request(
                    server.port,
                    "POST",
                    "/v1/plans",
                    body=plan_to_payload(_plan(seed=2), 32),
                )
                assert status == 202
                victim = json.loads(raw)["request_id"]
                status, _h, raw = await _request(
                    server.port, "DELETE", f"/v1/plans/{victim}"
                )
                assert status == 200
                assert json.loads(raw) == {"request_id": victim, "cancelled": True}
                # Cancelling twice is idempotent and reported as a no-op.
                status, _h, raw = await _request(
                    server.port, "DELETE", f"/v1/plans/{victim}"
                )
                assert status == 200
                assert json.loads(raw)["cancelled"] is False
                status, _h, raw = await _request(
                    server.port, "GET", f"/v1/plans/{victim}/result"
                )
                assert status == 409
                assert "cancelled" in json.loads(raw)["error"]
                backend.release.set()
            sim.close()

        asyncio.run(scenario())


class TestFailures:
    def test_failed_flight_maps_to_500_with_fault_name(self, flaky_backend):
        async def scenario():
            sim = Simulator(
                backend=flaky_backend(fail_at=1), cache=DecompositionCache()
            )
            async with _serve(sim, dispatch_slots=1) as (_service, server):
                status, _h, raw = await _request(
                    server.port,
                    "POST",
                    "/v1/plans",
                    body=plan_to_payload(_plan(seed=1), 32),
                )
                assert status == 202
                request_id = json.loads(raw)["request_id"]
                status, _h, raw = await _request(
                    server.port, "GET", f"/v1/plans/{request_id}/result"
                )
                assert status == 500
                assert "InjectedFault" in json.loads(raw)["error"]
                # The server survives: the next submission succeeds.
                status, _h, raw = await _request(
                    server.port,
                    "POST",
                    "/v1/plans",
                    body=plan_to_payload(_plan(seed=2), 32),
                )
                assert status == 202
                survivor = json.loads(raw)["request_id"]
                status, _h, _raw = await _request(
                    server.port, "GET", f"/v1/plans/{survivor}/result"
                )
                assert status == 200
            sim.close()

        asyncio.run(scenario())
