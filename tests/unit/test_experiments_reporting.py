"""Unit tests for the experiment reporting containers and paper constants."""

import numpy as np
import pytest

from repro.experiments import paper_values as pv
from repro.experiments.reporting import (
    ExperimentResult,
    Table,
    ascii_series,
    format_complex_matrix,
)


class TestPaperValues:
    def test_normalized_doppler(self):
        assert pv.NORMALIZED_DOPPLER == pytest.approx(0.05)

    def test_km_consistency(self):
        assert int(np.floor(pv.NORMALIZED_DOPPLER * pv.IDFT_POINTS)) == pv.KM_EXPECTED

    def test_eq22_matrix_is_hermitian_and_pd(self):
        assert np.allclose(pv.EQ22_COVARIANCE, pv.EQ22_COVARIANCE.conj().T)
        assert np.min(np.linalg.eigvalsh(pv.EQ22_COVARIANCE)) > 0

    def test_eq23_matrix_is_real_symmetric_and_pd(self):
        assert np.allclose(np.imag(pv.EQ23_COVARIANCE), 0.0)
        assert np.min(np.linalg.eigvalsh(pv.EQ23_COVARIANCE)) > 0

    def test_scenario_builders_match_matrices(self):
        ofdm = pv.paper_ofdm_scenario().covariance_spec(np.ones(3)).matrix
        mimo = pv.paper_mimo_scenario().covariance_spec(np.ones(3)).matrix
        assert np.allclose(ofdm, pv.EQ22_COVARIANCE, atol=5e-4)
        assert np.allclose(mimo, pv.EQ23_COVARIANCE, atol=2e-4)

    def test_arrival_delay_matrix_symmetric(self):
        assert np.allclose(pv.ARRIVAL_DELAYS_S, pv.ARRIVAL_DELAYS_S.T)


class TestFormatting:
    def test_format_complex_matrix_real_only(self):
        text = format_complex_matrix(np.eye(2))
        assert "i" not in text

    def test_format_complex_matrix_shows_imaginary(self):
        text = format_complex_matrix(np.array([[1 + 2j]]))
        assert "i" in text

    def test_ascii_series_dimensions(self):
        plot = ascii_series(np.sin(np.linspace(0, 10, 300)), width=40, height=8, label="sine")
        lines = plot.splitlines()
        assert lines[0].startswith("sine")
        assert len(lines) == 9
        assert all(len(line) <= 40 for line in lines[1:])

    def test_ascii_series_rejects_empty(self):
        with pytest.raises(ValueError):
            ascii_series(np.array([]))


class TestTable:
    def test_add_row_and_render(self):
        table = Table(title="demo", columns=["a", "b"])
        table.add_row(1, 2.5)
        table.add_row("x", True)
        text = table.render()
        assert "demo" in text
        assert "2.5" in text
        assert "yes" in text

    def test_add_row_wrong_arity(self):
        table = Table(title="demo", columns=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_complex_cell_formatting(self):
        table = Table(title="t", columns=["value"])
        table.add_row(0.5 + 0.25j)
        assert "+0.2500i" in table.render()


class TestExperimentResult:
    @pytest.fixture()
    def result(self):
        res = ExperimentResult(
            experiment_id="demo",
            paper_artifact="Fig. X",
            description="A demo result.",
            parameters={"n": 3},
            metrics={"error": 0.01},
            series={"trace": np.arange(10.0)},
        )
        table = Table(title="rows", columns=["k", "v"])
        table.add_row("a", 1)
        res.add_table(table)
        return res

    def test_render_contains_sections(self, result):
        text = result.render()
        assert "experiment : demo" in text
        assert "Fig. X" in text
        assert "n = 3" in text
        assert "error" in text
        assert "rows" in text

    def test_render_with_series(self, result):
        assert "trace" in result.render(include_series=True)

    def test_series_as_csv(self, result):
        csv = result.series_as_csv()
        lines = csv.splitlines()
        assert lines[0] == "index,trace"
        assert len(lines) == 11

    def test_series_as_csv_unknown_name(self, result):
        with pytest.raises(KeyError):
            result.series_as_csv("missing")

    def test_status_line(self, result):
        assert "PASS" in result.render()
        result.passed = False
        assert "FAIL" in result.render()
