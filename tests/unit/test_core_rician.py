"""Unit tests for the correlated Rician extension."""

import numpy as np
import pytest

from repro.core import RicianFadingGenerator, rician_moments
from repro.exceptions import SpecificationError
from repro.validation import empirical_correlation_coefficients


@pytest.fixture()
def covariance_2x2():
    return np.array([[1.0, 0.6], [0.6, 1.0]], dtype=complex)


class TestRicianMoments:
    def test_k_zero_reduces_to_rayleigh(self):
        mean, variance = rician_moments(0.0, total_power=1.0)
        assert mean == pytest.approx(np.sqrt(np.pi) / 2.0, rel=1e-6)
        assert variance == pytest.approx(1.0 - np.pi / 4.0, rel=1e-6)

    def test_large_k_approaches_deterministic(self):
        mean, variance = rician_moments(100.0, total_power=1.0)
        assert mean == pytest.approx(1.0, abs=0.01)
        assert variance < 0.01

    def test_mean_square_plus_variance_is_total_power(self):
        for k in (0.0, 1.0, 5.0):
            mean, variance = rician_moments(k, total_power=2.5)
            assert mean**2 + variance == pytest.approx(2.5, rel=1e-10)

    def test_invalid_inputs(self):
        with pytest.raises(SpecificationError):
            rician_moments(-1.0)
        with pytest.raises(SpecificationError):
            rician_moments(1.0, total_power=0.0)


class TestConstruction:
    def test_scalar_k_broadcasts(self, covariance_2x2):
        generator = RicianFadingGenerator(covariance_2x2, k_factors=3.0, rng=0)
        assert np.allclose(generator.k_factors, [3.0, 3.0])
        assert generator.n_branches == 2

    def test_negative_k_rejected(self, covariance_2x2):
        with pytest.raises(SpecificationError):
            RicianFadingGenerator(covariance_2x2, k_factors=-1.0, rng=0)

    def test_wrong_phase_shape_rejected(self, covariance_2x2):
        with pytest.raises(SpecificationError):
            RicianFadingGenerator(
                covariance_2x2, k_factors=1.0, los_phases=np.zeros(3), rng=0
            )

    def test_invalid_sample_count(self, covariance_2x2):
        generator = RicianFadingGenerator(covariance_2x2, k_factors=1.0, rng=0)
        with pytest.raises(SpecificationError):
            generator.generate(0)


class TestStatisticalProperties:
    def test_k_zero_matches_rayleigh_statistics(self, covariance_2x2):
        generator = RicianFadingGenerator(covariance_2x2, k_factors=0.0, rng=1)
        samples = generator.generate(300_000)
        achieved = samples @ samples.conj().T / samples.shape[1]
        assert np.max(np.abs(achieved - covariance_2x2)) < 0.02

    def test_total_power_preserved_for_any_k(self, covariance_2x2):
        generator = RicianFadingGenerator(covariance_2x2, k_factors=[0.5, 4.0], rng=2)
        samples = generator.generate(300_000)
        powers = np.mean(np.abs(samples) ** 2, axis=1)
        assert np.allclose(powers, 1.0, rtol=0.03)

    def test_envelope_mean_matches_rician_theory(self, covariance_2x2):
        generator = RicianFadingGenerator(covariance_2x2, k_factors=[1.0, 6.0], rng=3)
        envelopes = np.abs(generator.generate(300_000))
        expected = generator.theoretical_envelope_means()
        measured = np.mean(envelopes, axis=1)
        assert np.allclose(measured, expected, rtol=0.01)

    def test_large_k_envelope_concentrates_around_los_amplitude(self, covariance_2x2):
        generator = RicianFadingGenerator(covariance_2x2, k_factors=50.0, rng=4)
        envelopes = np.abs(generator.generate(100_000))
        assert np.std(envelopes[0]) < 0.15
        assert np.mean(envelopes[0]) == pytest.approx(1.0, abs=0.02)

    def test_diffuse_correlation_preserved(self, covariance_2x2):
        # The diffuse parts keep the requested correlation coefficient; after
        # removing the (deterministic) LOS the correlation survives.
        generator = RicianFadingGenerator(covariance_2x2, k_factors=2.0, rng=5)
        samples = generator.generate(300_000)
        los = generator._los_component(samples.shape[1])
        diffuse = samples - los
        rho = empirical_correlation_coefficients(diffuse)
        assert abs(rho[0, 1] - 0.6) < 0.02

    def test_los_doppler_rotates_phase(self, covariance_2x2):
        generator = RicianFadingGenerator(
            covariance_2x2, k_factors=100.0, los_doppler=0.01, rng=6
        )
        samples = generator.generate(200)
        # With K = 100 the LOS dominates; the instantaneous phase should advance
        # by ~ 2 pi * 0.01 per sample.
        phase_increment = np.angle(samples[0, 1:] / samples[0, :-1])
        assert np.median(phase_increment) == pytest.approx(2 * np.pi * 0.01, rel=0.2)

    def test_realtime_mode_shapes_diffuse_component(self, covariance_2x2):
        generator = RicianFadingGenerator(
            covariance_2x2, k_factors=0.0, normalized_doppler=0.05, n_points=2048, rng=7
        )
        samples = generator.generate(1500)
        assert samples.shape == (2, 1500)
        # Doppler-shaped diffuse fading: strong sample-to-sample correlation.
        branch = np.abs(samples[0])
        assert np.corrcoef(branch[:-1], branch[1:])[0, 1] > 0.9
