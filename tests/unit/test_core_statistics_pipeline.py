"""Unit tests for repro.core.statistics and repro.core.pipeline."""

import numpy as np
import pytest

from repro.core import (
    CovarianceSpec,
    covariance_match_report,
    envelope_power_report,
    generate_correlated_envelopes,
    generate_from_scenario,
)
from repro.core.statistics import (
    empirical_covariance,
    theoretical_envelope_mean,
    theoretical_envelope_variance,
)
from repro.channels import MIMOArrayScenario
from repro.exceptions import DimensionError, SpecificationError
from repro.types import EnvelopeBlock, GaussianBlock


class TestTheoreticalValues:
    def test_mean_formula(self):
        assert theoretical_envelope_mean(np.array([1.0]))[0] == pytest.approx(0.8862, abs=1e-4)

    def test_variance_formula(self):
        assert theoretical_envelope_variance(np.array([2.0]))[0] == pytest.approx(
            2.0 * 0.2146, abs=1e-3
        )


class TestCovarianceMatchReport:
    def test_perfect_match(self, eq22_covariance, rng):
        # Build samples with exactly the right second moment by coloring an
        # orthonormalized white block.
        from repro.core.coloring import coloring_matrix_eigen

        n = 200_000
        white = rng.normal(size=(3, n)) + 1j * rng.normal(size=(3, n))
        # Whiten exactly, then color exactly.
        cov = white @ white.conj().T / n
        whitened = np.linalg.inv(np.linalg.cholesky(cov)) @ white
        samples = coloring_matrix_eigen(eq22_covariance) @ whitened
        report = covariance_match_report(samples, eq22_covariance)
        assert report.relative_error < 1e-10
        assert report.within(0.01)

    def test_mismatch_detected(self, eq22_covariance, rng):
        samples = rng.normal(size=(3, 10_000)) + 1j * rng.normal(size=(3, 10_000))
        samples *= 3.0  # power 18, far from 1
        report = covariance_match_report(samples, eq22_covariance)
        assert not report.within(0.5)

    def test_summary_mentions_sample_count(self, eq22_covariance, rng):
        samples = rng.normal(size=(3, 128)) + 1j * rng.normal(size=(3, 128))
        assert "128" in covariance_match_report(samples, eq22_covariance).summary()

    def test_shape_mismatch_rejected(self, eq22_covariance, rng):
        samples = rng.normal(size=(2, 100)) + 1j * rng.normal(size=(2, 100))
        with pytest.raises(DimensionError):
            covariance_match_report(samples, eq22_covariance)

    def test_empirical_covariance_hermitian(self, rng):
        samples = rng.normal(size=(3, 500)) + 1j * rng.normal(size=(3, 500))
        cov = empirical_covariance(samples)
        assert np.allclose(cov, cov.conj().T)


class TestEnvelopePowerReport:
    def test_matched_rayleigh_samples(self, rng):
        sigma_g2 = np.array([1.0, 4.0])
        n = 300_000
        samples = np.vstack(
            [
                np.abs(
                    np.sqrt(s / 2) * (rng.normal(size=n) + 1j * rng.normal(size=n))
                )
                for s in sigma_g2
            ]
        )
        report = envelope_power_report(samples, sigma_g2)
        assert report.max_relative_power_error() < 0.02
        assert report.max_relative_mean_error() < 0.02
        assert "max relative" in report.summary()

    def test_shape_validation(self, rng):
        with pytest.raises(DimensionError):
            envelope_power_report(rng.normal(size=(2, 100)), np.ones(3))

    def test_1d_input_promoted(self, rng):
        report = envelope_power_report(np.abs(rng.normal(size=1000)), np.array([1.0]))
        assert report.n_samples == 1000


class TestGenerateCorrelatedEnvelopes:
    def test_snapshot_mode_returns_envelope_block(self, eq22_covariance):
        block = generate_correlated_envelopes(eq22_covariance, 100, rng=0)
        assert isinstance(block, EnvelopeBlock)
        assert block.envelopes.shape == (3, 100)

    def test_gaussian_output_option(self, eq22_covariance):
        block = generate_correlated_envelopes(
            eq22_covariance, 100, rng=0, return_gaussian=True
        )
        assert isinstance(block, GaussianBlock)

    def test_doppler_mode_length(self, eq22_covariance):
        block = generate_correlated_envelopes(
            eq22_covariance, 300, normalized_doppler=0.05, rng=0
        )
        assert block.envelopes.shape == (3, 300)

    def test_envelope_power_interpretation(self):
        covariance = np.diag([0.5, 1.0]).astype(complex)
        block = generate_correlated_envelopes(
            covariance, 200_000, envelope_powers=True, rng=1
        )
        measured = np.var(block.envelopes, axis=1)
        assert np.allclose(measured, [0.5, 1.0], rtol=0.05)

    def test_accepts_spec_object(self, eq22_spec):
        block = generate_correlated_envelopes(eq22_spec, 10, rng=0)
        assert block.n_branches == 3

    def test_invalid_sample_count(self, eq22_covariance):
        with pytest.raises(SpecificationError):
            generate_correlated_envelopes(eq22_covariance, 0, rng=0)


class TestGenerateFromScenario:
    def test_mimo_scenario_snapshot(self):
        scenario = MIMOArrayScenario(n_antennas=3, spacing_wavelengths=1.0)
        block = generate_from_scenario(scenario, np.ones(3), 64, rng=0)
        assert block.envelopes.shape == (3, 64)

    def test_scenario_without_method_rejected(self):
        with pytest.raises(SpecificationError):
            generate_from_scenario(object(), np.ones(3), 64, rng=0)

    def test_explicit_doppler_overrides(self):
        scenario = MIMOArrayScenario(n_antennas=2, spacing_wavelengths=1.0)
        block = generate_from_scenario(
            scenario, np.ones(2), 128, normalized_doppler=0.1, rng=0
        )
        assert block.envelopes.shape == (2, 128)
