"""Unit tests for the snapshot generator (Section 4.4 steps 1-7)."""

import numpy as np
import pytest

from repro.core import CovarianceSpec, RayleighFadingGenerator
from repro.exceptions import GenerationError, PowerError
from repro.types import EnvelopeBlock, GaussianBlock


class TestConstruction:
    def test_accepts_raw_matrix(self, eq22_covariance):
        generator = RayleighFadingGenerator(eq22_covariance, rng=0)
        assert generator.n_branches == 3

    def test_accepts_spec(self, eq22_spec):
        generator = RayleighFadingGenerator(eq22_spec, rng=0)
        assert generator.spec is eq22_spec

    def test_effective_covariance_equals_request_for_pd(self, eq22_covariance):
        generator = RayleighFadingGenerator(eq22_covariance, rng=0)
        assert np.allclose(generator.effective_covariance, eq22_covariance)

    def test_indefinite_request_is_repaired_not_rejected(self, indefinite_covariance):
        generator = RayleighFadingGenerator(indefinite_covariance, rng=0)
        assert generator.coloring.was_repaired

    def test_invalid_sample_variance(self, eq22_covariance):
        with pytest.raises(PowerError):
            RayleighFadingGenerator(eq22_covariance, sample_variance=0.0, rng=0)


class TestGeneration:
    def test_gaussian_block_shape(self, eq22_covariance):
        generator = RayleighFadingGenerator(eq22_covariance, rng=1)
        block = generator.generate_gaussian(100)
        assert isinstance(block, GaussianBlock)
        assert block.samples.shape == (3, 100)

    def test_envelope_block_shape(self, eq22_covariance):
        generator = RayleighFadingGenerator(eq22_covariance, rng=1)
        block = generator.generate_envelopes(50)
        assert isinstance(block, EnvelopeBlock)
        assert block.envelopes.shape == (3, 50)
        assert np.all(block.envelopes >= 0)

    def test_generate_shorthand(self, eq22_covariance):
        generator = RayleighFadingGenerator(eq22_covariance, rng=1)
        assert generator.generate(7).shape == (3, 7)

    def test_reproducibility(self, eq22_covariance):
        a = RayleighFadingGenerator(eq22_covariance, rng=5).generate(16)
        b = RayleighFadingGenerator(eq22_covariance, rng=5).generate(16)
        assert np.allclose(a, b)

    def test_per_call_rng_override(self, eq22_covariance):
        generator = RayleighFadingGenerator(eq22_covariance, rng=5)
        a = generator.generate(16, rng=77)
        b = RayleighFadingGenerator(eq22_covariance, rng=99).generate(16, rng=77)
        assert np.allclose(a, b)

    def test_invalid_sample_count(self, eq22_covariance):
        with pytest.raises(GenerationError):
            RayleighFadingGenerator(eq22_covariance, rng=0).generate(0)

    def test_metadata_records_method(self, eq22_covariance):
        block = RayleighFadingGenerator(eq22_covariance, rng=0).generate_gaussian(4)
        assert block.metadata["method"] == "snapshot"
        assert block.metadata["coloring_method"] == "eigen"


class TestColorMethod:
    def test_color_matrix_shape_vector(self, eq22_covariance):
        generator = RayleighFadingGenerator(eq22_covariance, rng=0)
        out = generator.color(np.ones(3, dtype=complex))
        assert out.shape == (3,)

    def test_color_matrix_shape_block(self, eq22_covariance):
        generator = RayleighFadingGenerator(eq22_covariance, rng=0)
        out = generator.color(np.ones((3, 10), dtype=complex))
        assert out.shape == (3, 10)

    def test_color_wrong_branch_count_rejected(self, eq22_covariance):
        generator = RayleighFadingGenerator(eq22_covariance, rng=0)
        with pytest.raises(GenerationError):
            generator.color(np.ones((2, 10), dtype=complex))

    def test_color_normalizes_by_sample_std(self, eq22_covariance):
        # Doubling sample_variance and feeding sqrt(2)-scaled white noise must
        # give the same output: Z = L W / sigma_w.
        white = np.random.default_rng(3).normal(size=(3, 64)) + 1j * np.random.default_rng(
            4
        ).normal(size=(3, 64))
        g1 = RayleighFadingGenerator(eq22_covariance, sample_variance=1.0, rng=0)
        g2 = RayleighFadingGenerator(eq22_covariance, sample_variance=2.0, rng=0)
        assert np.allclose(g1.color(white), g2.color(white * np.sqrt(2.0)))


class TestStatisticalProperties:
    @pytest.fixture(scope="class")
    def big_block(self, eq22_covariance):
        generator = RayleighFadingGenerator(eq22_covariance, rng=42)
        return generator.generate(300_000)

    def test_achieved_covariance(self, big_block, eq22_covariance):
        achieved = big_block @ big_block.conj().T / big_block.shape[1]
        assert np.max(np.abs(achieved - eq22_covariance)) < 0.02

    def test_zero_mean(self, big_block):
        assert np.max(np.abs(np.mean(big_block, axis=1))) < 0.01

    def test_branch_powers(self, big_block):
        powers = np.mean(np.abs(big_block) ** 2, axis=1)
        assert np.allclose(powers, 1.0, atol=0.02)

    def test_envelope_moments_match_rayleigh(self, big_block):
        envelopes = np.abs(big_block)
        assert np.allclose(np.mean(envelopes, axis=1), 0.8862, atol=0.01)
        assert np.allclose(np.var(envelopes, axis=1), 0.2146, atol=0.01)

    def test_phases_cover_full_circle(self, big_block):
        phases = np.angle(big_block[0])
        histogram, _ = np.histogram(phases, bins=8, range=(-np.pi, np.pi))
        assert histogram.min() > 0.8 * histogram.mean()

    def test_unequal_power_request(self):
        covariance = np.diag([0.5, 2.0, 8.0]).astype(complex)
        generator = RayleighFadingGenerator(covariance, rng=3)
        samples = generator.generate(200_000)
        powers = np.mean(np.abs(samples) ** 2, axis=1)
        assert np.allclose(powers, [0.5, 2.0, 8.0], rtol=0.03)

    def test_indefinite_request_realizes_clipped_covariance(self, indefinite_covariance):
        generator = RayleighFadingGenerator(indefinite_covariance, rng=9)
        samples = generator.generate(300_000)
        achieved = samples @ samples.conj().T / samples.shape[1]
        assert np.max(np.abs(achieved - generator.effective_covariance)) < 0.02
