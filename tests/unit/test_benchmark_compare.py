"""Unit tests for the CI benchmark median-regression comparator.

``benchmarks/compare_benchmarks.py`` is the script the CI benchmarks job
runs against the previous run's artifact; it must fail only on genuine
median regressions and degrade gracefully when there is nothing to compare.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_MODULE_PATH = (
    Path(__file__).resolve().parents[2] / "benchmarks" / "compare_benchmarks.py"
)
_spec = importlib.util.spec_from_file_location("compare_benchmarks", _MODULE_PATH)
compare_benchmarks = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(compare_benchmarks)


def _write_report(path, medians):
    payload = {
        "benchmarks": [
            {"name": name, "stats": {"median": median}}
            for name, median in medians.items()
        ]
    }
    path.write_text(json.dumps(payload), encoding="utf8")
    return path


class TestLoadMedians:
    def test_loads_name_to_median_mapping(self, tmp_path):
        path = _write_report(tmp_path / "r.json", {"bench_a": 0.5, "bench_b": 1.25})
        assert compare_benchmarks.load_medians(path) == {
            "bench_a": 0.5,
            "bench_b": 1.25,
        }

    def test_missing_file_returns_none(self, tmp_path):
        assert compare_benchmarks.load_medians(tmp_path / "absent.json") is None

    def test_malformed_json_returns_none(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf8")
        assert compare_benchmarks.load_medians(path) is None

    def test_non_benchmark_payload_returns_none(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"something": "else"}), encoding="utf8")
        assert compare_benchmarks.load_medians(path) is None

    def test_entries_without_stats_are_skipped(self, tmp_path):
        path = tmp_path / "partial.json"
        payload = {
            "benchmarks": [
                {"name": "ok", "stats": {"median": 2.0}},
                {"name": "broken"},
            ]
        }
        path.write_text(json.dumps(payload), encoding="utf8")
        assert compare_benchmarks.load_medians(path) == {"ok": 2.0}


class TestCompareMedians:
    def test_within_threshold_passes(self):
        regressions, notes = compare_benchmarks.compare_medians(
            {"a": 1.0}, {"a": 1.2}, threshold=0.25
        )
        assert regressions == []
        assert notes == []

    def test_regression_beyond_threshold_reported(self):
        regressions, _ = compare_benchmarks.compare_medians(
            {"a": 1.0, "b": 1.0}, {"a": 1.5, "b": 0.9}, threshold=0.25
        )
        assert len(regressions) == 1
        assert regressions[0].startswith("a:")

    def test_speedups_never_fail(self):
        regressions, _ = compare_benchmarks.compare_medians(
            {"a": 1.0}, {"a": 0.1}, threshold=0.25
        )
        assert regressions == []

    def test_new_and_removed_benchmarks_are_notes_not_failures(self):
        regressions, notes = compare_benchmarks.compare_medians(
            {"old": 1.0}, {"new": 1.0}, threshold=0.25
        )
        assert regressions == []
        assert len(notes) == 2

    def test_boundary_is_not_a_regression(self):
        # Exactly +25% stays within a 25% threshold (strict inequality).
        regressions, _ = compare_benchmarks.compare_medians(
            {"a": 1.0}, {"a": 1.25}, threshold=0.25
        )
        assert regressions == []

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            compare_benchmarks.compare_medians({}, {}, threshold=-0.1)


class TestMain:
    def test_regression_exits_nonzero(self, tmp_path, capsys):
        previous = _write_report(tmp_path / "prev.json", {"a": 1.0})
        current = _write_report(tmp_path / "cur.json", {"a": 2.0})
        code = compare_benchmarks.main([str(previous), str(current)])
        out = capsys.readouterr().out
        assert code == 1
        assert "regression" in out

    def test_clean_comparison_exits_zero(self, tmp_path, capsys):
        previous = _write_report(tmp_path / "prev.json", {"a": 1.0})
        current = _write_report(tmp_path / "cur.json", {"a": 1.05})
        code = compare_benchmarks.main([str(previous), str(current)])
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_missing_baseline_skips_gracefully(self, tmp_path, capsys):
        current = _write_report(tmp_path / "cur.json", {"a": 1.0})
        code = compare_benchmarks.main(
            [str(tmp_path / "absent.json"), str(current)]
        )
        assert code == 0
        assert "skipping" in capsys.readouterr().out

    def test_missing_current_fails(self, tmp_path):
        previous = _write_report(tmp_path / "prev.json", {"a": 1.0})
        code = compare_benchmarks.main(
            [str(previous), str(tmp_path / "absent.json")]
        )
        assert code == 1

    def test_custom_threshold_respected(self, tmp_path):
        previous = _write_report(tmp_path / "prev.json", {"a": 1.0})
        current = _write_report(tmp_path / "cur.json", {"a": 1.4})
        assert compare_benchmarks.main([str(previous), str(current)]) == 1
        assert (
            compare_benchmarks.main(
                [str(previous), str(current), "--threshold", "0.5"]
            )
            == 0
        )


class TestEmptyComparison:
    """A non-empty baseline compared against nothing must fail, not pass.

    Regression tests for the CI hole where a crashed benchmark suite that
    still wrote ``"benchmarks": []`` sailed through as "no regressions:
    0 benchmarks".
    """

    def test_empty_current_report_fails(self, tmp_path, capsys):
        previous = _write_report(tmp_path / "prev.json", {"a": 1.0, "b": 2.0})
        current = _write_report(tmp_path / "cur.json", {})
        code = compare_benchmarks.main([str(previous), str(current)])
        out = capsys.readouterr().out
        assert code == 1
        assert "no overlapping benchmarks" in out
        assert "no regressions" not in out

    def test_disjoint_benchmark_sets_fail(self, tmp_path, capsys):
        previous = _write_report(tmp_path / "prev.json", {"old_a": 1.0})
        current = _write_report(tmp_path / "cur.json", {"new_a": 1.0})
        code = compare_benchmarks.main([str(previous), str(current)])
        out = capsys.readouterr().out
        assert code == 1
        assert "no overlapping benchmarks" in out

    def test_empty_baseline_still_skips(self, tmp_path, capsys):
        # The first-run grace is untouched: no baseline means nothing to
        # gate, so an empty *previous* report passes.
        previous = _write_report(tmp_path / "prev.json", {})
        current = _write_report(tmp_path / "cur.json", {"a": 1.0})
        assert compare_benchmarks.main([str(previous), str(current)]) == 0
        assert "skipping" in capsys.readouterr().out

    def test_partial_overlap_still_compares(self, tmp_path, capsys):
        previous = _write_report(tmp_path / "prev.json", {"a": 1.0, "gone": 1.0})
        current = _write_report(tmp_path / "cur.json", {"a": 1.0, "new": 1.0})
        code = compare_benchmarks.main([str(previous), str(current)])
        out = capsys.readouterr().out
        assert code == 0
        assert "no regressions: 1 benchmarks" in out


class TestWarnOnly:
    def test_warn_only_downgrades_regression(self, tmp_path, capsys):
        previous = _write_report(tmp_path / "prev.json", {"a": 1.0})
        current = _write_report(tmp_path / "cur.json", {"a": 2.0})
        code = compare_benchmarks.main(
            [str(previous), str(current), "--warn-only"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "WARNING" in out
        assert "regression" in out

    def test_warn_only_downgrades_empty_comparison(self, tmp_path, capsys):
        previous = _write_report(tmp_path / "prev.json", {"a": 1.0})
        current = _write_report(tmp_path / "cur.json", {})
        code = compare_benchmarks.main(
            [str(previous), str(current), "--warn-only"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "WARNING" in out
        assert "no overlapping benchmarks" in out

    def test_warn_only_downgrades_missing_current(self, tmp_path, capsys):
        previous = _write_report(tmp_path / "prev.json", {"a": 1.0})
        code = compare_benchmarks.main(
            [str(previous), str(tmp_path / "absent.json"), "--warn-only"]
        )
        assert code == 0
        assert "WARNING" in capsys.readouterr().out

    def test_warn_only_clean_run_stays_quiet(self, tmp_path, capsys):
        previous = _write_report(tmp_path / "prev.json", {"a": 1.0})
        current = _write_report(tmp_path / "cur.json", {"a": 1.0})
        code = compare_benchmarks.main(
            [str(previous), str(current), "--warn-only"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "WARNING" not in out


class TestUnitFlag:
    """The ``--unit`` display flag (added for peak-allocation reports)."""

    def test_default_unit_is_seconds(self, tmp_path, capsys):
        previous = _write_report(tmp_path / "prev.json", {"a": 1.0})
        current = _write_report(tmp_path / "cur.json", {"a": 2.0})
        assert compare_benchmarks.main([str(previous), str(current)]) == 1
        assert "1s -> 2s" in capsys.readouterr().out

    def test_unit_bytes_formats_report_lines(self, tmp_path, capsys):
        previous = _write_report(tmp_path / "prev.json", {"a": 1000.0})
        current = _write_report(tmp_path / "cur.json", {"a": 2000.0})
        code = compare_benchmarks.main(
            [str(previous), str(current), "--unit", "B"]
        )
        assert code == 1
        assert "1000B -> 2000B" in capsys.readouterr().out

    def test_unit_is_display_only_not_gating(self, tmp_path, capsys):
        # Same medians, any known unit: never a regression.
        previous = _write_report(tmp_path / "prev.json", {"a": 512.0})
        current = _write_report(tmp_path / "cur.json", {"a": 512.0})
        code = compare_benchmarks.main(
            [str(previous), str(current), "--unit", "B"]
        )
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_compare_medians_accepts_unit_keyword(self):
        regressions, notes = compare_benchmarks.compare_medians(
            {"a": 100.0}, {"a": 200.0}, threshold=0.25, unit="B"
        )
        assert len(regressions) == 1
        assert "100B" in regressions[0]
        assert notes == []

    def test_unknown_unit_is_an_argparse_error(self, tmp_path, capsys):
        previous = _write_report(tmp_path / "prev.json", {"a": 1.0})
        current = _write_report(tmp_path / "cur.json", {"a": 1.0})
        with pytest.raises(SystemExit) as excinfo:
            compare_benchmarks.main(
                [str(previous), str(current), "--unit", "parsecs"]
            )
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_known_units_are_seconds_bytes_and_milliseconds(self):
        assert compare_benchmarks.KNOWN_UNITS == ("s", "B", "ms")

    def test_millisecond_reports_display_ms(self, tmp_path, capsys):
        previous = _write_report(
            tmp_path / "prev.json", {"service_latency_p95_ms": 10.0}
        )
        current = _write_report(
            tmp_path / "cur.json", {"service_latency_p95_ms": 20.0}
        )
        code = compare_benchmarks.main(
            [str(previous), str(current), "--unit", "ms", "--threshold", "0.5"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "10ms -> 20ms" in out
